//! Generalized N×N sliding-tile puzzle (8-puzzle, 15-puzzle, 24-puzzle, …)
//! with the Manhattan heuristic and inverse-move pruning.
//!
//! `uts-puzzle15` is the paper-faithful, bit-packed 4×4 implementation the
//! benchmarks use; this module is the general-N library version. For
//! `n = 4` the two produce *identical* search trees — a cross-validation
//! test checks node-for-node agreement of whole IDA\* runs.

use serde::{Deserialize, Serialize};
use uts_tree::HeuristicProblem;

/// A board side length (2..=15; tiles must fit a u8 and h a u16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Side(u8);

impl Side {
    /// Validate a side length.
    ///
    /// # Panics
    /// Panics outside `2..=15`.
    pub fn new(n: u8) -> Side {
        assert!((2..=15).contains(&n), "side must be in 2..=15");
        Side(n)
    }

    /// The raw value.
    pub fn get(self) -> u8 {
        self.0
    }

    /// Number of cells.
    pub fn cells(self) -> usize {
        self.0 as usize * self.0 as usize
    }
}

/// A state: tile vector (`tiles[cell] = tile`, 0 = blank), cached blank
/// position, cached Manhattan distance, and the last blank move (as the
/// target-cell delta) for inverse pruning.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlidingState {
    /// Tiles in row-major order.
    pub tiles: Vec<u8>,
    /// Blank cell index.
    pub blank: u16,
    /// Cached Manhattan distance.
    pub h: u16,
    /// The previous blank cell (pruned as a move target), `u16::MAX` at
    /// the root.
    pub came_from: u16,
}

impl uts_tree::CkptNode for SlidingState {
    fn encode_node(&self, out: &mut Vec<u8>) {
        self.tiles.encode_node(out);
        uts_tree::codec::put_u16(out, self.blank);
        uts_tree::codec::put_u16(out, self.h);
        uts_tree::codec::put_u16(out, self.came_from);
    }
    fn decode_node(r: &mut uts_tree::Reader<'_>) -> Result<Self, uts_tree::CodecError> {
        Ok(Self { tiles: Vec::decode_node(r)?, blank: r.u16()?, h: r.u16()?, came_from: r.u16()? })
    }
}

/// The generalized sliding puzzle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sliding {
    side: Side,
    start: Vec<u8>,
}

impl Sliding {
    /// Build from a start position (goal convention: blank at cell 0,
    /// tiles 1.. in row-major order — the Korf convention).
    ///
    /// # Panics
    /// Panics if `tiles` is not a permutation of `0..n²`.
    pub fn new(side: Side, tiles: Vec<u8>) -> Sliding {
        assert_eq!(tiles.len(), side.cells(), "board size mismatch");
        let mut seen = vec![false; side.cells()];
        for &t in &tiles {
            assert!(
                (t as usize) < side.cells() && !seen[t as usize],
                "tiles must be a permutation of 0..n^2"
            );
            seen[t as usize] = true;
        }
        Sliding { side, start: tiles }
    }

    /// Side length.
    pub fn side(&self) -> Side {
        self.side
    }

    /// Manhattan distance of `tile` at `cell` from its goal cell.
    fn manhattan_tile(&self, tile: u8, cell: u16) -> u16 {
        let n = self.side.0 as u16;
        let (gr, gc) = (tile as u16 / n, tile as u16 % n);
        let (r, c) = (cell / n, cell % n);
        gr.abs_diff(r) + gc.abs_diff(c)
    }

    fn full_manhattan(&self, tiles: &[u8]) -> u16 {
        tiles
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != 0)
            .map(|(c, &t)| self.manhattan_tile(t, c as u16))
            .sum()
    }

    /// Orthogonal neighbors of `cell`, in Up, Down, Left, Right order of
    /// the *blank's* movement (matching `uts-puzzle15`'s generation order).
    fn neighbors(&self, cell: u16, out: &mut Vec<u16>) {
        let n = self.side.0 as u16;
        let (r, c) = (cell / n, cell % n);
        if r > 0 {
            out.push(cell - n);
        }
        if r + 1 < n {
            out.push(cell + n);
        }
        if c > 0 {
            out.push(cell - 1);
        }
        if c + 1 < n {
            out.push(cell + 1);
        }
    }
}

impl HeuristicProblem for Sliding {
    type State = SlidingState;

    fn initial(&self) -> SlidingState {
        let blank =
            self.start.iter().position(|&t| t == 0).expect("permutation contains the blank") as u16;
        SlidingState {
            tiles: self.start.clone(),
            blank,
            h: self.full_manhattan(&self.start),
            came_from: u16::MAX,
        }
    }

    fn h(&self, s: &SlidingState) -> u32 {
        s.h as u32
    }

    fn successors(&self, s: &SlidingState, out: &mut Vec<(SlidingState, u32)>) {
        let mut targets = Vec::with_capacity(4);
        self.neighbors(s.blank, &mut targets);
        for target in targets {
            if target == s.came_from {
                continue; // never undo the generating move
            }
            let tile = s.tiles[target as usize];
            let mut tiles = s.tiles.clone();
            tiles[s.blank as usize] = tile;
            tiles[target as usize] = 0;
            let h = s.h - self.manhattan_tile(tile, target) + self.manhattan_tile(tile, s.blank);
            out.push((SlidingState { tiles, blank: target, h, came_from: s.blank }, 1));
        }
    }

    fn is_goal(&self, s: &SlidingState) -> bool {
        s.h == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_puzzle15::{scrambled, Puzzle15};
    use uts_tree::ida::ida_star;

    fn goal_tiles(n: u8) -> Vec<u8> {
        (0..n as usize * n as usize).map(|i| i as u8).collect()
    }

    #[test]
    fn goal_has_zero_h() {
        for n in [3u8, 4, 5] {
            let p = Sliding::new(Side::new(n), goal_tiles(n));
            let s = p.initial();
            assert_eq!(s.h, 0);
            assert!(p.is_goal(&s));
        }
    }

    #[test]
    fn incremental_h_matches_full_recompute() {
        let p = Sliding::new(Side::new(5), goal_tiles(5));
        let mut frontier = vec![p.initial()];
        let mut succ = Vec::new();
        for _ in 0..6 {
            let mut next = Vec::new();
            for s in &frontier {
                succ.clear();
                p.successors(s, &mut succ);
                for (child, _) in succ.drain(..) {
                    assert_eq!(child.h, p.full_manhattan(&child.tiles));
                    next.push(child);
                }
            }
            frontier = next;
        }
    }

    #[test]
    fn corner_blank_has_two_moves_center_three_after_pruning() {
        let p = Sliding::new(Side::new(3), goal_tiles(3));
        let root = p.initial(); // blank at corner 0
        let mut succ = Vec::new();
        p.successors(&root, &mut succ);
        assert_eq!(succ.len(), 2);
        // A child's inverse move is pruned.
        let child = succ[0].0.clone();
        succ.clear();
        p.successors(&child, &mut succ);
        assert!(succ.iter().all(|(s, _)| s.tiles != root.tiles));
    }

    /// The 4×4 generalization agrees with the packed `uts-puzzle15`
    /// implementation on entire IDA\* runs: same bounds, same per-iteration
    /// node counts, same optimum.
    #[test]
    fn matches_packed_15_puzzle_node_for_node() {
        for seed in [5u64, 23, 42] {
            let inst = scrambled(seed, 30);
            let packed = Puzzle15::new(inst.board());
            let general = Sliding::new(Side::new(4), inst.tiles.to_vec());
            let a = ida_star(&packed, 80);
            let b = ida_star(&general, 80);
            assert_eq!(a.solution_cost, b.solution_cost, "seed {seed}");
            assert_eq!(a.iterations.len(), b.iterations.len(), "seed {seed}");
            for (x, y) in a.iterations.iter().zip(&b.iterations) {
                assert_eq!(x.bound, y.bound, "seed {seed}");
                assert_eq!(x.expanded, y.expanded, "seed {seed}");
                assert_eq!(x.goals, y.goals, "seed {seed}");
            }
        }
    }

    #[test]
    fn eight_puzzle_solves() {
        // Two moves from the goal (blank slid Down then Right).
        let p = Sliding::new(Side::new(3), vec![3, 1, 2, 4, 0, 5, 6, 7, 8]);
        let r = ida_star(&p, 40);
        assert_eq!(r.solution_cost, Some(2));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_board_rejected() {
        let _ = Sliding::new(Side::new(3), vec![0, 1, 1, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "side must be")]
    fn tiny_board_rejected() {
        let _ = Side::new(1);
    }
}
