//! N-queens backtracking with bitmask pruning.
//!
//! The classic irregular backtracking tree: place one queen per row; a
//! node's children are the safe columns of the next row, tracked as three
//! bitmasks (columns, both diagonal directions) so `expand` is branch-free
//! per candidate. Goals are complete placements; the tree is searched
//! exhaustively, so the goal count is the classical Q(n) sequence.

use serde::{Deserialize, Serialize};
use uts_tree::TreeProblem;

/// A partial placement: `row` queens placed, attack masks accumulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueensNode {
    /// Rows filled so far.
    pub row: u8,
    /// Columns under attack.
    pub cols: u32,
    /// "/" diagonals under attack (shifted left each row).
    pub diag1: u32,
    /// "\" diagonals under attack (shifted right each row).
    pub diag2: u32,
}

impl uts_tree::CkptNode for QueensNode {
    fn encode_node(&self, out: &mut Vec<u8>) {
        out.push(self.row);
        uts_tree::codec::put_u32(out, self.cols);
        uts_tree::codec::put_u32(out, self.diag1);
        uts_tree::codec::put_u32(out, self.diag2);
    }
    fn decode_node(r: &mut uts_tree::Reader<'_>) -> Result<Self, uts_tree::CodecError> {
        Ok(Self { row: r.u8()?, cols: r.u32()?, diag1: r.u32()?, diag2: r.u32()? })
    }
}

/// The N-queens problem for an `n × n` board, `n <= 31`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NQueens {
    n: u8,
}

impl NQueens {
    /// Create an `n`-queens problem.
    ///
    /// # Panics
    /// Panics unless `1 <= n <= 31` (mask width).
    pub fn new(n: u8) -> Self {
        assert!((1..=31).contains(&n), "n must be in 1..=31");
        Self { n }
    }

    /// Board size.
    pub fn n(&self) -> u8 {
        self.n
    }

    /// The classical solution counts Q(1)..Q(12) (OEIS A000170), used by
    /// tests and handy for callers validating a run.
    pub const KNOWN_COUNTS: [u64; 12] = [1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680, 14200];
}

impl TreeProblem for NQueens {
    type Node = QueensNode;

    fn root(&self) -> QueensNode {
        QueensNode { row: 0, cols: 0, diag1: 0, diag2: 0 }
    }

    fn expand(&self, node: &QueensNode, out: &mut Vec<QueensNode>) {
        if node.row == self.n {
            return;
        }
        let full = (1u32 << self.n) - 1;
        let mut free = full & !(node.cols | node.diag1 | node.diag2);
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            out.push(QueensNode {
                row: node.row + 1,
                cols: node.cols | bit,
                diag1: (node.diag1 | bit) << 1,
                diag2: (node.diag2 | bit) >> 1,
            });
        }
    }

    fn is_goal(&self, node: &QueensNode) -> bool {
        node.row == self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_tree::serial_dfs;

    #[test]
    fn counts_match_the_known_sequence() {
        for (i, &expect) in NQueens::KNOWN_COUNTS.iter().enumerate().take(9) {
            let n = (i + 1) as u8;
            let stats = serial_dfs(&NQueens::new(n));
            assert_eq!(stats.goals, expect, "Q({n})");
        }
    }

    #[test]
    fn q10_through_q11() {
        assert_eq!(serial_dfs(&NQueens::new(10)).goals, 724);
        assert_eq!(serial_dfs(&NQueens::new(11)).goals, 2680);
    }

    #[test]
    fn root_expansion_offers_n_columns() {
        let q = NQueens::new(8);
        let mut out = Vec::new();
        q.expand(&q.root(), &mut out);
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn attacked_columns_are_pruned() {
        let q = NQueens::new(4);
        // Queen at row 0 column 0: row 1 must exclude columns 0 and 1.
        let mut out = Vec::new();
        q.expand(&q.root(), &mut out);
        let first = *out.iter().find(|n| n.cols == 1).unwrap();
        out = Vec::new();
        q.expand(&first, &mut out);
        let cols: Vec<u32> = out.iter().map(|n| n.cols & !1).collect();
        assert!(cols.iter().all(|&c| c != 1 << 1), "column 1 is on the diagonal");
        assert_eq!(out.len(), 2, "columns 2 and 3 remain");
    }

    #[test]
    fn goals_are_leaves() {
        // Greedy first-free-column placement solves 5-queens (0,2,4,1,3);
        // the resulting goal node must expand to nothing.
        let q = NQueens::new(5);
        let mut node = q.root();
        let mut out = Vec::new();
        while node.row < 5 {
            out.clear();
            q.expand(&node, &mut out);
            node = *out.first().expect("greedy 5-queens never dead-ends");
        }
        assert!(q.is_goal(&node));
        out.clear();
        q.expand(&node, &mut out);
        assert!(out.is_empty(), "complete placements are leaves");
    }

    #[test]
    #[should_panic(expected = "1..=31")]
    fn oversized_board_rejected() {
        let _ = NQueens::new(32);
    }

    #[test]
    fn parallel_lockstep_matches_serial() {
        use uts_core::{run, EngineConfig, Scheme};
        use uts_machine::CostModel;
        let q = NQueens::new(9);
        let serial = serial_dfs(&q);
        let out = run(&q, &EngineConfig::new(64, Scheme::gp_dk(), CostModel::cm2()));
        assert_eq!(out.report.nodes_expanded, serial.expanded);
        assert_eq!(out.goals, serial.goals);
    }
}
