//! 0/1 knapsack by depth-first branch-and-bound — the operations-research
//! corner of the paper's motivation (Papadimitriou & Steiglitz).
//!
//! Items are pre-sorted by value density. A node fixes a prefix of
//! include/exclude decisions; children are pruned when (a) the item no
//! longer fits, or (b) the fractional-relaxation upper bound on the
//! remaining value cannot beat a *precomputed greedy incumbent*. Using a
//! static incumbent (instead of a shared, improving one) keeps the tree
//! identical for serial and lockstep-parallel execution — the anomaly-free
//! regime of the paper. Goals are complete decision vectors whose value
//! strictly beats the incumbent; exhaustive search therefore enumerates
//! every improvement on greedy, and the best of them is the optimum.

use serde::{Deserialize, Serialize};
use uts_tree::TreeProblem;

/// One item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Item {
    /// Weight (capacity units).
    pub weight: u32,
    /// Value.
    pub value: u32,
}

/// A search node: decisions made for items `0..next`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnapsackNode {
    /// Next item to decide.
    pub next: u16,
    /// Weight used so far.
    pub weight: u32,
    /// Value collected so far.
    pub value: u32,
}

impl uts_tree::CkptNode for KnapsackNode {
    fn encode_node(&self, out: &mut Vec<u8>) {
        uts_tree::codec::put_u16(out, self.next);
        uts_tree::codec::put_u32(out, self.weight);
        uts_tree::codec::put_u32(out, self.value);
    }
    fn decode_node(r: &mut uts_tree::Reader<'_>) -> Result<Self, uts_tree::CodecError> {
        Ok(Self { next: r.u16()?, weight: r.u32()?, value: r.u32()? })
    }
}

/// The 0/1 knapsack problem, with items sorted by value density and a
/// greedy incumbent for bound pruning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Knapsack {
    items: Vec<Item>,
    capacity: u32,
    greedy_value: u32,
}

impl Knapsack {
    /// Build a problem; items are re-sorted by decreasing value density.
    ///
    /// # Panics
    /// Panics if any item has zero weight (the relaxation would divide by
    /// zero; zero-weight items belong in the sack unconditionally).
    pub fn new(mut items: Vec<Item>, capacity: u32) -> Self {
        assert!(items.iter().all(|i| i.weight > 0), "zero-weight items are not allowed");
        items.sort_by(|a, b| {
            (b.value as u64 * a.weight as u64).cmp(&(a.value as u64 * b.weight as u64))
        });
        let greedy_value = Self::greedy(&items, capacity);
        Self { items, capacity, greedy_value }
    }

    /// The items in density order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The capacity.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Value of the greedy (density-order) packing — the static incumbent.
    pub fn greedy_value(&self) -> u32 {
        self.greedy_value
    }

    fn greedy(items: &[Item], capacity: u32) -> u32 {
        let mut weight = 0;
        let mut value = 0;
        for item in items {
            if weight + item.weight <= capacity {
                weight += item.weight;
                value += item.value;
            }
        }
        value
    }

    /// Fractional-relaxation upper bound on the total value achievable
    /// from `node` (density order makes the greedy fractional fill
    /// optimal for the relaxation).
    pub fn upper_bound(&self, node: &KnapsackNode) -> f64 {
        let mut bound = node.value as f64;
        let mut room = (self.capacity - node.weight) as f64;
        for item in &self.items[node.next as usize..] {
            if room <= 0.0 {
                break;
            }
            let take = (item.weight as f64).min(room);
            bound += item.value as f64 * take / item.weight as f64;
            room -= take;
        }
        bound
    }

    /// Exact optimum by dynamic programming (test oracle).
    pub fn dp_optimum(&self) -> u32 {
        let mut best = vec![0u32; self.capacity as usize + 1];
        for item in &self.items {
            for cap in (item.weight..=self.capacity).rev() {
                let with = best[(cap - item.weight) as usize] + item.value;
                if with > best[cap as usize] {
                    best[cap as usize] = with;
                }
            }
        }
        best[self.capacity as usize]
    }

    /// The best value reachable by the pruned search: the maximum of the
    /// greedy incumbent and every goal's value. (A convenience for callers
    /// that just want the optimum; `serial_dfs_collect` exposes the goals.)
    pub fn optimum_via_search(&self) -> u32 {
        let mut best = self.greedy_value;
        uts_tree::serial::serial_dfs_collect(self, |node| best = best.max(node.value));
        best
    }
}

impl TreeProblem for Knapsack {
    type Node = KnapsackNode;

    fn root(&self) -> KnapsackNode {
        KnapsackNode { next: 0, weight: 0, value: 0 }
    }

    fn expand(&self, node: &KnapsackNode, out: &mut Vec<KnapsackNode>) {
        let idx = node.next as usize;
        if idx >= self.items.len() {
            return;
        }
        let item = self.items[idx];
        // Exclude branch first (so DFS explores the include branch first —
        // the stack pops from the back).
        let exclude = KnapsackNode { next: node.next + 1, ..*node };
        if self.upper_bound(&exclude) > self.greedy_value as f64 {
            out.push(exclude);
        }
        if node.weight + item.weight <= self.capacity {
            let include = KnapsackNode {
                next: node.next + 1,
                weight: node.weight + item.weight,
                value: node.value + item.value,
            };
            if self.upper_bound(&include) > self.greedy_value as f64 {
                out.push(include);
            }
        }
    }

    fn is_goal(&self, node: &KnapsackNode) -> bool {
        node.next as usize == self.items.len() && node.value > self.greedy_value
    }
}

/// Seeded random instances: weights in `1..=max_weight`, values loosely
/// correlated with weights (correlated instances are the hard ones).
pub fn random_instance(seed: u64, n: usize, max_weight: u32) -> Knapsack {
    use rand::prelude::*;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let items: Vec<Item> = (0..n)
        .map(|_| {
            let weight = rng.random_range(1..=max_weight);
            let value = weight + rng.random_range(0..=max_weight / 2);
            Item { weight, value }
        })
        .collect();
    let total: u32 = items.iter().map(|i| i.weight).sum();
    Knapsack::new(items, total / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_tree::serial_dfs;

    fn toy() -> Knapsack {
        Knapsack::new(
            vec![
                Item { weight: 2, value: 3 },
                Item { weight: 3, value: 4 },
                Item { weight: 4, value: 5 },
                Item { weight: 5, value: 6 },
            ],
            5,
        )
    }

    #[test]
    fn items_sorted_by_density() {
        let k = toy();
        let densities: Vec<f64> =
            k.items().iter().map(|i| i.value as f64 / i.weight as f64).collect();
        assert!(densities.windows(2).all(|w| w[0] >= w[1]), "{densities:?}");
    }

    #[test]
    fn greedy_is_a_lower_bound_dp_is_exact() {
        let k = toy();
        assert!(k.greedy_value() <= k.dp_optimum());
        assert_eq!(k.dp_optimum(), 7, "items (2,3)+(3,4) fill capacity 5");
    }

    #[test]
    fn search_finds_the_dp_optimum() {
        for seed in 0..8 {
            let k = random_instance(seed, 16, 30);
            assert_eq!(k.optimum_via_search(), k.dp_optimum(), "seed {seed}");
        }
    }

    #[test]
    fn goals_strictly_beat_greedy() {
        let k = random_instance(3, 14, 25);
        let greedy = k.greedy_value();
        uts_tree::serial::serial_dfs_collect(&k, |node| {
            assert!(node.value > greedy);
            assert!(node.weight <= k.capacity());
        });
    }

    #[test]
    fn bound_pruning_shrinks_the_tree() {
        // Compare against an unpruned enumeration count 2^(n+1)-1.
        let k = random_instance(1, 18, 20);
        let stats = serial_dfs(&k);
        assert!(
            stats.expanded < (1u64 << 19),
            "pruning must beat full enumeration: {}",
            stats.expanded
        );
        // And pruning is usually dramatic on correlated instances.
        assert!(stats.expanded < 1u64 << 16, "expanded {}", stats.expanded);
    }

    #[test]
    fn upper_bound_dominates_true_value() {
        let k = toy();
        let root = k.root();
        assert!(k.upper_bound(&root) >= k.dp_optimum() as f64);
    }

    #[test]
    #[should_panic(expected = "zero-weight")]
    fn zero_weight_rejected() {
        let _ = Knapsack::new(vec![Item { weight: 0, value: 1 }], 5);
    }

    #[test]
    fn parallel_lockstep_matches_serial() {
        use uts_core::{run, EngineConfig, Scheme};
        use uts_machine::CostModel;
        let k = random_instance(7, 20, 30);
        let serial = serial_dfs(&k);
        let out = run(&k, &EngineConfig::new(64, Scheme::gp_dp(), CostModel::cm2()));
        assert_eq!(out.report.nodes_expanded, serial.expanded);
        assert_eq!(out.goals, serial.goals);
    }
}
