//! Rayon-parallel scans using the classic two-pass (up-sweep / down-sweep)
//! chunked algorithm.
//!
//! The input is cut into cache-friendly chunks; pass 1 reduces each chunk in
//! parallel, a short sequential scan over the per-chunk sums produces each
//! chunk's incoming prefix, and pass 2 scans each chunk in parallel seeded
//! with that prefix. The result is bit-identical to [`crate::seq`] for any
//! associative operator (property-tested).

use rayon::prelude::*;

use crate::op::ScanOp;
use crate::seq;

/// Chunk size for the two-pass algorithm. 64 KiB of `u64`s per chunk keeps
/// pass-2 writes streaming while giving rayon enough tasks to balance.
const CHUNK: usize = 8192;

/// Parallel exclusive scan. Falls back to the sequential scan for inputs
/// that fit in a single chunk.
pub fn exclusive_scan<O: ScanOp>(xs: &[O::Elem]) -> Vec<O::Elem> {
    scan_impl::<O>(xs, false)
}

/// Parallel inclusive scan.
pub fn inclusive_scan<O: ScanOp>(xs: &[O::Elem]) -> Vec<O::Elem> {
    scan_impl::<O>(xs, true)
}

fn scan_impl<O: ScanOp>(xs: &[O::Elem], inclusive: bool) -> Vec<O::Elem> {
    if xs.len() <= CHUNK {
        return if inclusive { seq::inclusive_scan::<O>(xs) } else { seq::exclusive_scan::<O>(xs) };
    }
    // Up-sweep: reduce each chunk.
    let chunk_sums: Vec<O::Elem> = xs.par_chunks(CHUNK).map(|c| seq::reduce::<O>(c)).collect();
    // Exclusive scan of chunk sums gives each chunk's incoming prefix. The
    // number of chunks is tiny, so this stays sequential.
    let prefixes = seq::exclusive_scan::<O>(&chunk_sums);
    // Down-sweep: scan each chunk seeded with its prefix.
    let mut out = vec![O::identity(); xs.len()];
    out.par_chunks_mut(CHUNK).zip(xs.par_chunks(CHUNK)).zip(prefixes.par_iter()).for_each(
        |((out_chunk, in_chunk), &prefix)| {
            let mut acc = prefix;
            if inclusive {
                for (o, &x) in out_chunk.iter_mut().zip(in_chunk) {
                    acc = O::combine(acc, x);
                    *o = acc;
                }
            } else {
                for (o, &x) in out_chunk.iter_mut().zip(in_chunk) {
                    *o = acc;
                    acc = O::combine(acc, x);
                }
            }
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{MaxOp, SumOp};
    use proptest::prelude::*;

    #[test]
    fn large_input_crosses_chunk_boundary() {
        let xs: Vec<u64> = (0..3 * CHUNK as u64 + 17).map(|i| i % 11).collect();
        assert_eq!(exclusive_scan::<SumOp>(&xs), seq::exclusive_scan::<SumOp>(&xs));
        assert_eq!(inclusive_scan::<SumOp>(&xs), seq::inclusive_scan::<SumOp>(&xs));
    }

    #[test]
    fn exactly_one_chunk_uses_fallback() {
        let xs: Vec<u64> = (0..CHUNK as u64).collect();
        assert_eq!(exclusive_scan::<SumOp>(&xs), seq::exclusive_scan::<SumOp>(&xs));
    }

    proptest! {
        #[test]
        fn par_exclusive_matches_seq(xs in proptest::collection::vec(0u64..1000, 0..40_000)) {
            prop_assert_eq!(exclusive_scan::<SumOp>(&xs), seq::exclusive_scan::<SumOp>(&xs));
        }

        #[test]
        fn par_inclusive_matches_seq(xs in proptest::collection::vec(0u64..1000, 0..40_000)) {
            prop_assert_eq!(inclusive_scan::<SumOp>(&xs), seq::inclusive_scan::<SumOp>(&xs));
        }

        #[test]
        fn par_max_scan_matches_seq(xs in proptest::collection::vec(0u64..u64::MAX/2, 0..30_000)) {
            prop_assert_eq!(inclusive_scan::<MaxOp>(&xs), seq::inclusive_scan::<MaxOp>(&xs));
        }
    }
}
