//! Segmented scans: scans restarted at segment boundaries.
//!
//! Segmented +-scans are the standard CM-2 building block for performing
//! many independent enumerations in one machine operation — the GP matching
//! scheme's rotated busy enumeration is two segments (indices at/after the
//! global pointer, then indices before it) enumerated in one pass.

use crate::op::ScanOp;

/// Exclusive segmented scan. `flags[i] == true` marks `i` as the first
/// element of a new segment; the running value resets to the identity there.
/// Element 0 always starts a segment regardless of its flag.
pub fn exclusive_segmented<O: ScanOp>(xs: &[O::Elem], flags: &[bool]) -> Vec<O::Elem> {
    assert_eq!(xs.len(), flags.len(), "values and segment flags must align");
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = O::identity();
    for (i, &x) in xs.iter().enumerate() {
        if flags[i] {
            acc = O::identity();
        }
        out.push(acc);
        acc = O::combine(acc, x);
    }
    out
}

/// Inclusive segmented scan (value at a segment head is the head itself).
pub fn inclusive_segmented<O: ScanOp>(xs: &[O::Elem], flags: &[bool]) -> Vec<O::Elem> {
    assert_eq!(xs.len(), flags.len(), "values and segment flags must align");
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = O::identity();
    for (i, &x) in xs.iter().enumerate() {
        if flags[i] {
            acc = O::identity();
        }
        acc = O::combine(acc, x);
        out.push(acc);
    }
    out
}

/// Per-segment totals, in segment order.
pub fn segment_totals<O: ScanOp>(xs: &[O::Elem], flags: &[bool]) -> Vec<O::Elem> {
    assert_eq!(xs.len(), flags.len(), "values and segment flags must align");
    let mut out = Vec::new();
    let mut acc = O::identity();
    for (i, &x) in xs.iter().enumerate() {
        if i != 0 && flags[i] {
            out.push(acc);
            acc = O::identity();
        }
        acc = O::combine(acc, x);
    }
    if !xs.is_empty() {
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::SumOp;
    use crate::seq;
    use proptest::prelude::*;

    #[test]
    fn restarts_at_segment_heads() {
        let xs = [1u64, 2, 3, 4, 5];
        let flags = [true, false, true, false, false];
        assert_eq!(exclusive_segmented::<SumOp>(&xs, &flags), vec![0, 1, 0, 3, 7]);
        assert_eq!(inclusive_segmented::<SumOp>(&xs, &flags), vec![1, 3, 3, 7, 12]);
    }

    #[test]
    fn single_segment_equals_plain_scan() {
        let xs = [4u64, 1, 1, 8];
        let flags = [true, false, false, false];
        assert_eq!(exclusive_segmented::<SumOp>(&xs, &flags), seq::exclusive_scan::<SumOp>(&xs));
    }

    #[test]
    fn totals_per_segment() {
        let xs = [1u64, 2, 3, 4, 5];
        let flags = [true, false, true, true, false];
        assert_eq!(segment_totals::<SumOp>(&xs, &flags), vec![3, 3, 9]);
    }

    #[test]
    fn empty_input() {
        assert_eq!(exclusive_segmented::<SumOp>(&[], &[]), Vec::<u64>::new());
        assert_eq!(segment_totals::<SumOp>(&[], &[]), Vec::<u64>::new());
    }

    proptest! {
        /// Concatenating per-segment plain scans equals the segmented scan.
        #[test]
        fn segmented_equals_per_segment_scans(
            xs in proptest::collection::vec(0u64..100, 1..200),
            seed in 0u64..1000,
        ) {
            let mut flags = vec![false; xs.len()];
            flags[0] = true;
            // Deterministic pseudo-random segment heads.
            let mut s = seed;
            for f in flags.iter_mut().skip(1) {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *f = (s >> 33) % 4 == 0;
            }
            let got = exclusive_segmented::<SumOp>(&xs, &flags);
            // Oracle: split and scan each segment separately.
            let mut expect = Vec::new();
            let mut seg_start = 0;
            for i in 1..=xs.len() {
                if i == xs.len() || flags[i] {
                    expect.extend(seq::exclusive_scan::<SumOp>(&xs[seg_start..i]));
                    seg_start = i;
                }
            }
            prop_assert_eq!(got, expect);
        }
    }
}
