//! Data-movement primitives: gather, scatter, and conditional pack/unpack.
//!
//! On the CM-2 these are router operations ("general communication" in the
//! paper's Sec. 3.3, the `O(log^2 P)`-on-a-hypercube part of a balancing
//! phase); functionally they are permutations and selections, provided
//! here to round out the scan substrate.

/// Gather: `out[i] = values[indices[i]]`.
///
/// # Panics
/// Panics if any index is out of bounds.
pub fn gather<T: Copy>(values: &[T], indices: &[usize]) -> Vec<T> {
    indices.iter().map(|&i| values[i]).collect()
}

/// Scatter: write `values[k]` to slot `indices[k]` of a fresh vector of
/// `len` `default`-filled slots. Later writes win on collision (the CM-2
/// router's deterministic-collision convention is arbitrary; tests pin
/// ours).
///
/// # Panics
/// Panics if lengths differ or an index is out of bounds.
pub fn scatter<T: Copy>(values: &[T], indices: &[usize], len: usize, default: T) -> Vec<T> {
    assert_eq!(values.len(), indices.len(), "values and indices must align");
    let mut out = vec![default; len];
    for (&v, &i) in values.iter().zip(indices) {
        out[i] = v;
    }
    out
}

/// Pack: the values whose flag is set, in index order (the value-level
/// counterpart of [`crate::pack_indices`]).
pub fn pack<T: Copy>(values: &[T], flags: &[bool]) -> Vec<T> {
    assert_eq!(values.len(), flags.len(), "values and flags must align");
    values.iter().zip(flags).filter(|(_, &f)| f).map(|(&v, _)| v).collect()
}

/// Unpack: inverse of [`pack`] — distribute `packed` values back to the
/// flagged slots of a `default`-filled vector shaped like `flags`.
///
/// # Panics
/// Panics if `packed` has fewer values than `flags` has set bits.
pub fn unpack<T: Copy>(packed: &[T], flags: &[bool], default: T) -> Vec<T> {
    let mut it = packed.iter();
    flags
        .iter()
        .map(
            |&f| {
                if f {
                    *it.next().expect("packed values must cover every set flag")
                } else {
                    default
                }
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gather_reorders() {
        assert_eq!(gather(&[10, 20, 30], &[2, 0, 1, 2]), vec![30, 10, 20, 30]);
        assert_eq!(gather::<u8>(&[1], &[]), Vec::<u8>::new());
    }

    #[test]
    fn scatter_places_and_defaults() {
        assert_eq!(scatter(&[7, 9], &[3, 1], 5, 0), vec![0, 9, 0, 7, 0]);
    }

    #[test]
    fn scatter_collision_last_writer_wins() {
        assert_eq!(scatter(&[1, 2], &[0, 0], 2, 9), vec![2, 9]);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let values = [5, 6, 7, 8];
        let flags = [true, false, true, false];
        let packed = pack(&values, &flags);
        assert_eq!(packed, vec![5, 7]);
        let back = unpack(&packed, &flags, 0);
        assert_eq!(back, vec![5, 0, 7, 0]);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_pack_rejected() {
        let _ = pack(&[1, 2], &[true]);
    }

    proptest! {
        #[test]
        fn gather_then_scatter_is_identity_on_permutations(n in 1usize..200, seed in 0u64..1000) {
            // Build a deterministic permutation from the seed.
            let mut perm: Vec<usize> = (0..n).collect();
            let mut s = seed;
            for i in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                perm.swap(i, (s >> 33) as usize % (i + 1));
            }
            let values: Vec<u64> = (0..n as u64).map(|v| v * 3 + 1).collect();
            let gathered = gather(&values, &perm);
            // Scattering the gathered values back through the same
            // permutation restores the original.
            let restored = scatter(&gathered, &perm, n, u64::MAX);
            prop_assert_eq!(restored, values);
        }

        #[test]
        fn unpack_inverts_pack(flags in proptest::collection::vec(any::<bool>(), 0..100)) {
            let values: Vec<u32> = (0..flags.len() as u32).collect();
            let packed = pack(&values, &flags);
            let back = unpack(&packed, &flags, u32::MAX);
            for (i, &f) in flags.iter().enumerate() {
                if f {
                    prop_assert_eq!(back[i], values[i]);
                } else {
                    prop_assert_eq!(back[i], u32::MAX);
                }
            }
        }
    }
}
