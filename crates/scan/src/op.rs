//! Scan operators: the associative monoids a scan can run over.
//!
//! Blelloch's scan model admits any associative operator with an identity;
//! the machine's matching step uses +-scans, while max-/min-/or-scans are
//! provided for the segmented variants and for tests of the substrate.

/// An associative operator with identity over a copyable element type.
///
/// Implementations must satisfy, for all `a, b, c`:
/// `combine(a, combine(b, c)) == combine(combine(a, b), c)` and
/// `combine(identity(), a) == a == combine(a, identity())`.
/// These laws are checked by property tests in this crate.
pub trait ScanOp {
    /// The element type scanned over.
    type Elem: Copy + Send + Sync;
    /// The identity element of the monoid.
    fn identity() -> Self::Elem;
    /// The associative combination.
    fn combine(a: Self::Elem, b: Self::Elem) -> Self::Elem;
}

/// Addition over `u64` (wrapping is a logic error; the simulator's counts
/// stay far below `u64::MAX`).
pub struct SumOp;

impl ScanOp for SumOp {
    type Elem = u64;
    fn identity() -> u64 {
        0
    }
    fn combine(a: u64, b: u64) -> u64 {
        a + b
    }
}

/// Maximum over `u64`.
pub struct MaxOp;

impl ScanOp for MaxOp {
    type Elem = u64;
    fn identity() -> u64 {
        0
    }
    fn combine(a: u64, b: u64) -> u64 {
        a.max(b)
    }
}

/// Minimum over `u64`.
pub struct MinOp;

impl ScanOp for MinOp {
    type Elem = u64;
    fn identity() -> u64 {
        u64::MAX
    }
    fn combine(a: u64, b: u64) -> u64 {
        a.min(b)
    }
}

/// Logical OR over `bool`.
pub struct OrOp;

impl ScanOp for OrOp {
    type Elem = bool;
    fn identity() -> bool {
        false
    }
    fn combine(a: bool, b: bool) -> bool {
        a || b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_are_neutral() {
        assert_eq!(SumOp::combine(SumOp::identity(), 5), 5);
        assert_eq!(MaxOp::combine(MaxOp::identity(), 5), 5);
        assert_eq!(MinOp::combine(MinOp::identity(), 5), 5);
        assert!(!OrOp::combine(OrOp::identity(), false));
        assert!(OrOp::combine(OrOp::identity(), true));
    }

    #[test]
    fn ops_are_associative_on_samples() {
        let samples = [0u64, 1, 7, u64::MAX / 4, 1 << 40];
        for &a in &samples {
            for &b in &samples {
                for &c in &samples {
                    assert_eq!(
                        MaxOp::combine(a, MaxOp::combine(b, c)),
                        MaxOp::combine(MaxOp::combine(a, b), c)
                    );
                    assert_eq!(
                        MinOp::combine(a, MinOp::combine(b, c)),
                        MinOp::combine(MinOp::combine(a, b), c)
                    );
                }
            }
        }
    }
}
