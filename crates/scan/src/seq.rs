//! Sequential reference implementations of the scans.
//!
//! These are the oracles against which [`crate::par`] is property-tested,
//! and the implementations used for short inputs where parallel setup would
//! dominate.

use crate::op::ScanOp;

/// Exclusive scan: `out[i] = xs[0] ⊕ … ⊕ xs[i-1]`, `out[0] = identity`.
pub fn exclusive_scan<O: ScanOp>(xs: &[O::Elem]) -> Vec<O::Elem> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = O::identity();
    for &x in xs {
        out.push(acc);
        acc = O::combine(acc, x);
    }
    out
}

/// Inclusive scan: `out[i] = xs[0] ⊕ … ⊕ xs[i]`.
pub fn inclusive_scan<O: ScanOp>(xs: &[O::Elem]) -> Vec<O::Elem> {
    let mut out = Vec::with_capacity(xs.len());
    let mut acc = O::identity();
    for &x in xs {
        acc = O::combine(acc, x);
        out.push(acc);
    }
    out
}

/// Reduction over the whole slice.
pub fn reduce<O: ScanOp>(xs: &[O::Elem]) -> O::Elem {
    xs.iter().fold(O::identity(), |acc, &x| O::combine(acc, x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{MaxOp, MinOp, SumOp};

    #[test]
    fn exclusive_sum_basic() {
        assert_eq!(exclusive_scan::<SumOp>(&[1, 2, 3, 4]), vec![0, 1, 3, 6]);
    }

    #[test]
    fn inclusive_sum_basic() {
        assert_eq!(inclusive_scan::<SumOp>(&[1, 2, 3, 4]), vec![1, 3, 6, 10]);
    }

    #[test]
    fn max_scan_tracks_running_max() {
        assert_eq!(inclusive_scan::<MaxOp>(&[2, 1, 5, 3]), vec![2, 2, 5, 5]);
        assert_eq!(exclusive_scan::<MaxOp>(&[2, 1, 5, 3]), vec![0, 2, 2, 5]);
    }

    #[test]
    fn min_scan_tracks_running_min() {
        assert_eq!(inclusive_scan::<MinOp>(&[4, 7, 2, 9]), vec![4, 4, 2, 2]);
    }

    #[test]
    fn reduce_matches_sum() {
        assert_eq!(reduce::<SumOp>(&[1, 2, 3]), 6);
        assert_eq!(reduce::<SumOp>(&[]), 0);
    }
}
