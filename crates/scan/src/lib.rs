//! Scan (parallel-prefix) primitives in the style of Blelloch's
//! *"Scans as Primitive Parallel Operations"* (IEEE ToC 1989), which the
//! paper's load-balancing setup step relies on (Karypis & Kumar, Sec. 3.3).
//!
//! On the CM-2 these operations were provided by dedicated scan hardware; the
//! simulator in `uts-machine` charges them according to a pluggable cost
//! model (`O(1)` on the CM-2, `O(log P)` on a hypercube, `O(sqrt P)` on a
//! mesh), while this crate provides the *functional* semantics used to
//! compute processor enumerations and the rendezvous matching.
//!
//! Two execution strategies are provided with identical results:
//!
//! * [`seq`] — straightforward sequential scans (the oracle);
//! * [`par`] — rayon-based two-pass (up-sweep/down-sweep over chunks)
//!   parallel scans for large inputs.
//!
//! The higher-level helpers ([`enumerate_marked`], [`pack_indices`],
//! [`rendezvous_match`], [`rendezvous_match_from`]) implement exactly the
//! processor-matching computations of the paper: enumerating busy and idle
//! processors and pairing the k-th busy with the k-th idle, optionally
//! rotated by a global pointer.

pub mod op;
pub mod par;
pub mod permute;
pub mod segmented;
pub mod seq;

pub use op::{MaxOp, MinOp, OrOp, ScanOp, SumOp};
pub use permute::{gather, pack, scatter, unpack};

/// Cutover length below which the parallel entry points fall back to the
/// sequential implementation (parallel setup costs dominate under this size).
pub const PAR_THRESHOLD: usize = 1 << 14;

/// Exclusive sum-scan (`out[i] = sum of xs[..i]`, `out[0] = 0`), picking the
/// sequential or parallel strategy by input length.
///
/// ```
/// assert_eq!(uts_scan::exclusive_sum(&[3, 1, 4, 1]), vec![0, 3, 4, 8]);
/// ```
pub fn exclusive_sum(xs: &[u64]) -> Vec<u64> {
    if xs.len() < PAR_THRESHOLD {
        seq::exclusive_scan::<SumOp>(xs)
    } else {
        par::exclusive_scan::<SumOp>(xs)
    }
}

/// Inclusive sum-scan (`out[i] = sum of xs[..=i]`).
///
/// ```
/// assert_eq!(uts_scan::inclusive_sum(&[3, 1, 4, 1]), vec![3, 4, 8, 9]);
/// ```
pub fn inclusive_sum(xs: &[u64]) -> Vec<u64> {
    if xs.len() < PAR_THRESHOLD {
        seq::inclusive_scan::<SumOp>(xs)
    } else {
        par::inclusive_scan::<SumOp>(xs)
    }
}

/// Total of a slice via the same reduction tree the scans use.
pub fn reduce_sum(xs: &[u64]) -> u64 {
    if xs.len() < PAR_THRESHOLD {
        xs.iter().copied().sum()
    } else {
        use rayon::prelude::*;
        xs.par_iter().copied().sum()
    }
}

/// Count the `true` flags (the `A` and `I` of the paper: number of busy /
/// idle processors), the reduction the machine performs before testing a
/// trigger condition.
pub fn count_marked(flags: &[bool]) -> usize {
    if flags.len() < PAR_THRESHOLD {
        flags.iter().filter(|&&b| b).count()
    } else {
        use rayon::prelude::*;
        flags.par_iter().filter(|&&b| b).count()
    }
}

/// Enumerate marked elements: `out[i] = number of marked elements strictly
/// before i` (an exclusive +-scan of the 0/1 flag vector). Marked element
/// `i` therefore receives its 0-based rank `out[i]` among marked elements.
///
/// This is the paper's "enumerating both the idle and the busy processors"
/// (Sec. 2.1) used to set up the one-on-one matching.
///
/// ```
/// let flags = [true, false, true, true, false];
/// assert_eq!(uts_scan::enumerate_marked(&flags), vec![0, 1, 1, 2, 3]);
/// ```
pub fn enumerate_marked(flags: &[bool]) -> Vec<usize> {
    let ones: Vec<u64> = flags.iter().map(|&b| b as u64).collect();
    exclusive_sum(&ones).into_iter().map(|v| v as usize).collect()
}

/// Collect the indices of marked elements, in index order ("pack").
///
/// ```
/// assert_eq!(uts_scan::pack_indices(&[false, true, true, false, true]), vec![1, 2, 4]);
/// ```
pub fn pack_indices(flags: &[bool]) -> Vec<usize> {
    let mut out = Vec::new();
    pack_indices_into(flags, &mut out);
    out
}

/// [`pack_indices`] into a caller-owned buffer (cleared first), so repeated
/// matching rounds reuse one allocation. Above [`PAR_THRESHOLD`] the packing
/// runs as an enumerate-and-scatter over the rank scan — the machine's
/// actual algorithm, executed on the host's parallel scan path; below it, a
/// single sequential sweep (identical output).
pub fn pack_indices_into(flags: &[bool], out: &mut Vec<usize>) {
    out.clear();
    if flags.len() < PAR_THRESHOLD {
        for (i, &f) in flags.iter().enumerate() {
            if f {
                out.push(i);
            }
        }
    } else {
        let ranks = enumerate_marked(flags);
        let total = ranks.last().map_or(0, |&r| r) + usize::from(*flags.last().unwrap_or(&false));
        out.resize(total, 0);
        for (i, &f) in flags.iter().enumerate() {
            if f {
                out[ranks[i]] = i;
            }
        }
    }
}

/// One busy→idle pairing produced by the rendezvous allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pair {
    /// Index of the donating (busy) processor.
    pub donor: usize,
    /// Index of the receiving (idle) processor.
    pub receiver: usize,
}

/// Rendezvous allocation (Hillis, *The Connection Machine*): match the k-th
/// busy processor with the k-th idle processor, for `k < min(A, I)`.
///
/// This is the *nGP* matching of the paper: the enumeration always starts at
/// processor 0, so processors early in the index order donate repeatedly.
pub fn rendezvous_match(busy: &[bool], idle: &[bool]) -> Vec<Pair> {
    rendezvous_match_from(busy, idle, 0)
}

/// Rendezvous allocation with the busy enumeration rotated to start at
/// `start` (the processor *after* the paper's global pointer).
///
/// The k-th busy processor *in the circular order `start, start+1, ..,
/// start-1`* is matched with the k-th idle processor *in plain index order*
/// (the paper rotates only the busy enumeration; idle processors are
/// enumerated normally — see Fig. 2). With `start = 0` this degenerates to
/// [`rendezvous_match`] (nGP).
///
/// Returns `min(A, I)` pairs; if `I > A` the surplus idle processors receive
/// no work, exactly as in the paper.
pub fn rendezvous_match_from(busy: &[bool], idle: &[bool], start: usize) -> Vec<Pair> {
    let mut scratch = MatchScratch::default();
    let mut pairs = Vec::new();
    rendezvous_match_from_into(busy, idle, start, &mut scratch, &mut pairs);
    pairs
}

/// Reusable packed-index buffers for the rendezvous matching, so that a
/// long run's many balancing rounds share one set of allocations.
#[derive(Debug, Default, Clone)]
pub struct MatchScratch {
    /// Packed indices of busy processors (ascending).
    pub packed_busy: Vec<usize>,
    /// Packed indices of idle processors (ascending).
    pub packed_idle: Vec<usize>,
}

/// [`rendezvous_match_from`] into caller-owned buffers: `pairs` is cleared
/// and refilled; `scratch` holds the packed busy/idle enumerations between
/// calls. Output is identical to the allocating entry point.
pub fn rendezvous_match_from_into(
    busy: &[bool],
    idle: &[bool],
    start: usize,
    scratch: &mut MatchScratch,
    pairs: &mut Vec<Pair>,
) {
    assert_eq!(busy.len(), idle.len(), "busy/idle flag vectors must cover the same PEs");
    pairs.clear();
    let p = busy.len();
    if p == 0 {
        return;
    }
    let start = start % p;
    // Busy processors in circular order from `start`. On the machine this is
    // two segmented enumerations (indices >= start, then indices < start)
    // glued together; functionally it is a rotation of the packed index list.
    pack_indices_into(busy, &mut scratch.packed_busy);
    pack_indices_into(idle, &mut scratch.packed_idle);
    rendezvous_match_packed(&scratch.packed_busy, &scratch.packed_idle, start, pairs);
}

/// [`rendezvous_match_from`] over *already packed* busy/idle enumerations
/// (both ascending), the form the engine hot loop maintains incrementally:
/// it derives `packed_busy` from its dense active-PE list and `packed_idle`
/// from that list's complement, so no O(P) flag sweep ever runs.
///
/// Because idle processors are matched in plain index order (Fig. 2),
/// `packed_idle` may be just the *prefix* of the idle enumeration with
/// `min(A, I)` entries — the surplus is never inspected. Output is
/// identical to the flag-based entry points given consistent inputs.
pub fn rendezvous_match_packed(
    packed_busy: &[usize],
    packed_idle: &[usize],
    start: usize,
    pairs: &mut Vec<Pair>,
) {
    pairs.clear();
    let a = packed_busy.len();
    let n = a.min(packed_idle.len());
    if n == 0 {
        return;
    }
    // Busy processors in circular order from `start` (a rotation of the
    // ascending enumeration); idle processors in plain ascending order.
    let rotation = packed_busy.partition_point(|&i| i < start);
    pairs.reserve(n);
    for k in 0..n {
        let donor = packed_busy[(rotation + k) % a];
        pairs.push(Pair { donor, receiver: packed_idle[k] });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_sum_empty_and_single() {
        assert_eq!(exclusive_sum(&[]), Vec::<u64>::new());
        assert_eq!(exclusive_sum(&[7]), vec![0]);
    }

    #[test]
    fn inclusive_matches_exclusive_shifted() {
        let xs = [5u64, 0, 2, 9, 1];
        let ex = exclusive_sum(&xs);
        let inc = inclusive_sum(&xs);
        for i in 0..xs.len() {
            assert_eq!(inc[i], ex[i] + xs[i]);
        }
    }

    #[test]
    fn enumerate_none_marked() {
        assert_eq!(enumerate_marked(&[false, false]), vec![0, 0]);
        assert_eq!(pack_indices(&[false, false]), Vec::<usize>::new());
    }

    #[test]
    fn enumerate_all_marked() {
        assert_eq!(enumerate_marked(&[true, true, true]), vec![0, 1, 2]);
        assert_eq!(pack_indices(&[true, true, true]), vec![0, 1, 2]);
    }

    #[test]
    fn count_marked_counts() {
        assert_eq!(count_marked(&[true, false, true]), 2);
        assert_eq!(count_marked(&[]), 0);
    }

    /// The worked example of the paper's Fig. 2 (8 PEs, PEs 6 and 7 idle,
    /// global pointer at PE 5 → matching starts at PE 6's successor among
    /// busy PEs, i.e. PE 8). Paper indices are 1-based; ours are 0-based.
    #[test]
    fn figure2_example1_ngp() {
        // PEs 1..8 (0-based 0..8): B B B B B I I B
        let busy = [true, true, true, true, true, false, false, true];
        let idle = busy.map(|b| !b);
        let pairs = rendezvous_match(&busy, &idle);
        // nGP matches idle 6,7 (0-based 5,6) to busy 1,2 (0-based 0,1).
        assert_eq!(pairs, vec![Pair { donor: 0, receiver: 5 }, Pair { donor: 1, receiver: 6 }]);
    }

    #[test]
    fn figure2_example1_gp() {
        let busy = [true, true, true, true, true, false, false, true];
        let idle = busy.map(|b| !b);
        // Global pointer at PE 5 (0-based 4) → start enumerating busy PEs at
        // 0-based index 5; first busy PE from there is 7 (paper's PE 8).
        let pairs = rendezvous_match_from(&busy, &idle, 5);
        // GP matches idle 6,7 (0-based 5,6) to busy 8,1 (0-based 7,0).
        assert_eq!(pairs, vec![Pair { donor: 7, receiver: 5 }, Pair { donor: 0, receiver: 6 }]);
    }

    #[test]
    fn figure2_example2_gp_second_round() {
        // After the first GP round the pointer advanced to PE 1 (0-based 0);
        // same busy/idle pattern again.
        let busy = [true, true, true, true, true, false, false, true];
        let idle = busy.map(|b| !b);
        let pairs = rendezvous_match_from(&busy, &idle, 1);
        // GP now matches them to busy 2,3 (0-based 1,2).
        assert_eq!(pairs, vec![Pair { donor: 1, receiver: 5 }, Pair { donor: 2, receiver: 6 }]);
    }

    #[test]
    fn surplus_idle_receive_nothing() {
        let busy = [false, true, false, false];
        let idle = [true, false, true, true];
        let pairs = rendezvous_match(&busy, &idle);
        assert_eq!(pairs, vec![Pair { donor: 1, receiver: 0 }]);
    }

    #[test]
    fn surplus_busy_keep_working() {
        let busy = [true, true, true, false];
        let idle = [false, false, false, true];
        let pairs = rendezvous_match(&busy, &idle);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0], Pair { donor: 0, receiver: 3 });
    }

    #[test]
    fn rotation_wraps_past_end() {
        let busy = [true, false, true, false];
        let idle = [false, true, false, true];
        // start beyond the last busy index wraps to the first busy PE.
        let pairs = rendezvous_match_from(&busy, &idle, 3);
        assert_eq!(pairs, vec![Pair { donor: 0, receiver: 1 }, Pair { donor: 2, receiver: 3 }]);
    }

    #[test]
    fn empty_machine_matches_nothing() {
        assert_eq!(rendezvous_match(&[], &[]), Vec::new());
    }

    #[test]
    #[should_panic(expected = "same PEs")]
    fn mismatched_lengths_panic() {
        let _ = rendezvous_match(&[true], &[true, false]);
    }

    #[test]
    fn pack_indices_into_reuses_buffer_and_matches_allocating_path() {
        let mut out = Vec::new();
        let flags = [false, true, true, false, true];
        pack_indices_into(&flags, &mut out);
        assert_eq!(out, pack_indices(&flags));
        // Refill with different contents: cleared, not appended.
        pack_indices_into(&[true, false], &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn pack_indices_par_path_matches_seq_path() {
        // Cross the PAR_THRESHOLD so the enumerate-and-scatter path runs.
        let n = PAR_THRESHOLD + 37;
        let flags: Vec<bool> = (0..n).map(|i| i % 3 == 1 || i % 7 == 0).collect();
        let mut par_out = Vec::new();
        pack_indices_into(&flags, &mut par_out);
        let seq_out: Vec<usize> =
            flags.iter().enumerate().filter(|(_, &f)| f).map(|(i, _)| i).collect();
        assert_eq!(par_out, seq_out);
    }

    #[test]
    fn match_into_agrees_with_allocating_match_across_rotations() {
        let busy = [true, false, true, true, false, true, false, true];
        let idle = busy.map(|b| !b);
        let mut scratch = MatchScratch::default();
        let mut pairs = Vec::new();
        for start in 0..busy.len() {
            rendezvous_match_from_into(&busy, &idle, start, &mut scratch, &mut pairs);
            assert_eq!(pairs, rendezvous_match_from(&busy, &idle, start), "start={start}");
        }
    }

    #[test]
    fn match_packed_agrees_with_flag_path_for_all_rotations() {
        let busy = [true, false, true, true, false, true, false, true];
        let idle = busy.map(|b| !b);
        let packed_busy = pack_indices(&busy);
        let packed_idle = pack_indices(&idle);
        let mut pairs = Vec::new();
        for start in 0..=busy.len() {
            rendezvous_match_packed(&packed_busy, &packed_idle, start, &mut pairs);
            assert_eq!(pairs, rendezvous_match_from(&busy, &idle, start), "start={start}");
        }
    }

    #[test]
    fn match_packed_accepts_idle_prefix() {
        // Surplus idle PEs are never matched, so passing only the first
        // min(A, I) idle indices must give the same pairs.
        let busy = [false, true, false, false, true, false];
        let idle = busy.map(|b| !b);
        let packed_busy = pack_indices(&busy); // [1, 4]
        let full_idle = pack_indices(&idle); // [0, 2, 3, 5]
        let mut full = Vec::new();
        let mut prefix = Vec::new();
        rendezvous_match_packed(&packed_busy, &full_idle, 2, &mut full);
        rendezvous_match_packed(&packed_busy, &full_idle[..2], 2, &mut prefix);
        assert_eq!(full, prefix);
        assert_eq!(full.len(), 2);
    }

    #[test]
    fn match_into_large_machine_uses_scan_path() {
        let p = PAR_THRESHOLD + 11;
        let busy: Vec<bool> = (0..p).map(|i| i % 5 == 0).collect();
        let idle: Vec<bool> = (0..p).map(|i| i % 5 == 2).collect();
        let mut scratch = MatchScratch::default();
        let mut pairs = Vec::new();
        rendezvous_match_from_into(&busy, &idle, 123, &mut scratch, &mut pairs);
        assert!(!pairs.is_empty());
        for pair in &pairs {
            assert!(busy[pair.donor]);
            assert!(idle[pair.receiver]);
        }
        // Receivers are fed in plain index order (paper Fig. 2 semantics).
        assert!(pairs.windows(2).all(|w| w[0].receiver < w[1].receiver));
    }
}
