//! The balancing phase's view of the per-PE stacks.
//!
//! [`crate::engine::balancing_phase`] needs exactly four things from the
//! ensemble: the machine size, the dense stack-length census, and two
//! *batched* transfer primitives (matched splits and counted splits). For
//! the in-process engines that view is [`uts_tree::StackArena`] itself;
//! the sharded multi-process machine (`uts-shard`) implements the same
//! trait over a coordinator-side length mirror plus wire messages to the
//! worker processes that own the slabs. Because the trait's primitives
//! are whole *rounds* — and within one rendezvous or equalization round
//! every donor and every receiver is a distinct PE touched exactly once —
//! batching the splits and reading the census afterwards is observationally
//! identical to the in-process engines' split-by-split interleaving, which
//! is the determinism argument for the sharded machine (DESIGN.md §13).

use uts_scan::Pair;
use uts_tree::{SplitPolicy, StackArena};

/// One counted-split request of an equalization round: move up to
/// `max_nodes` bottom-of-stack nodes from `donor` to `receiver`
/// (the [`StackArena::split_count_into`] contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountedMove {
    /// PE donating work.
    pub donor: usize,
    /// PE receiving it.
    pub receiver: usize,
    /// Upper bound on nodes moved (the donor always keeps at least one).
    pub max_nodes: usize,
}

/// The per-PE stack ensemble as the balancing phase sees it: a dense
/// length census plus batched split/transfer primitives. Implemented by
/// [`StackArena`] (in-process) and by `uts-shard`'s coordinator-side
/// remote store (stacks live in worker processes).
///
/// # Contract
///
/// Within one batch, all donors are distinct, all receivers are distinct,
/// and the two sets are disjoint (the rendezvous matching and the
/// equalizer both guarantee this), so implementations may apply the
/// batch's splits in any order — or concurrently across shards — and the
/// post-batch census is well-defined. `lens()` must reflect every
/// completed batch before the next call reads it.
pub trait StackStore {
    /// Ensemble size `P`.
    fn p(&self) -> usize;

    /// Dense per-PE stack lengths (`lens()[i]` = nodes on PE `i`'s stack;
    /// `0` = idle). Length is exactly [`StackStore::p`].
    fn lens(&self) -> &[u32];

    /// PE `i`'s stack size.
    fn len_of(&self, i: usize) -> usize {
        self.lens()[i] as usize
    }

    /// Whether PE `i` can donate (holds at least two nodes).
    fn can_split(&self, i: usize) -> bool {
        self.lens()[i] >= 2
    }

    /// Apply one matched round of splits: for each pair, split the donor's
    /// stack under `policy` and hand the donated part to the (empty)
    /// receiver. `ok[k]` reports whether pair `k` actually transferred
    /// (false iff the donor could not split). `ok` is cleared first.
    fn split_pairs(&mut self, pairs: &[Pair], policy: SplitPolicy, ok: &mut Vec<bool>);

    /// Apply one equalization round of counted splits: for each request,
    /// move up to `max_nodes` bottom nodes donor → receiver, preserving
    /// frame structure. `moved[k]` reports the node count request `k`
    /// actually moved (0 = nothing). `moved` is cleared first.
    fn split_counts(&mut self, reqs: &[CountedMove], moved: &mut Vec<usize>);
}

impl<N> StackStore for StackArena<N> {
    fn p(&self) -> usize {
        StackArena::p(self)
    }

    fn lens(&self) -> &[u32] {
        StackArena::lens(self)
    }

    fn split_pairs(&mut self, pairs: &[Pair], policy: SplitPolicy, ok: &mut Vec<bool>) {
        ok.clear();
        ok.extend(pairs.iter().map(|pair| self.split_into(pair.donor, pair.receiver, policy)));
    }

    fn split_counts(&mut self, reqs: &[CountedMove], moved: &mut Vec<usize>) {
        moved.clear();
        moved.extend(reqs.iter().map(|r| self.split_count_into(r.donor, r.receiver, r.max_nodes)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_tree::SearchStack;

    fn arena_with(lens: &[usize]) -> StackArena<u64> {
        let stacks: Vec<SearchStack<u64>> = lens
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let mut frames: Vec<Vec<u64>> = Vec::new();
                if n > 0 {
                    frames.push((0..n as u64).map(|k| (i as u64) << 32 | k).collect());
                }
                SearchStack::from_frames(frames)
            })
            .collect();
        StackArena::from_stacks(stacks)
    }

    #[test]
    fn arena_split_pairs_matches_split_into() {
        let mut a = arena_with(&[5, 0, 3, 0]);
        let mut b = arena_with(&[5, 0, 3, 0]);
        let pairs = [Pair { donor: 0, receiver: 1 }, Pair { donor: 2, receiver: 3 }];
        let mut ok = Vec::new();
        StackStore::split_pairs(&mut a, &pairs, SplitPolicy::Bottom, &mut ok);
        let expect: Vec<bool> =
            pairs.iter().map(|p| b.split_into(p.donor, p.receiver, SplitPolicy::Bottom)).collect();
        assert_eq!(ok, expect);
        assert_eq!(StackStore::lens(&a), StackArena::lens(&b));
    }

    #[test]
    fn arena_split_counts_matches_split_count_into() {
        let mut a = arena_with(&[9, 1, 0, 2]);
        let mut b = arena_with(&[9, 1, 0, 2]);
        let reqs = [
            CountedMove { donor: 0, receiver: 2, max_nodes: 4 },
            CountedMove { donor: 3, receiver: 1, max_nodes: 1 },
        ];
        let mut moved = Vec::new();
        StackStore::split_counts(&mut a, &reqs, &mut moved);
        let expect: Vec<usize> =
            reqs.iter().map(|r| b.split_count_into(r.donor, r.receiver, r.max_nodes)).collect();
        assert_eq!(moved, expect);
        assert_eq!(StackStore::lens(&a), StackArena::lens(&b));
    }

    #[test]
    fn census_defaults_read_the_lens_mirror() {
        let a = arena_with(&[4, 0, 1, 2]);
        assert_eq!(StackStore::p(&a), 4);
        assert_eq!(a.len_of(2), 1);
        assert!(StackStore::can_split(&a, 0));
        assert!(!StackStore::can_split(&a, 2));
    }
}
