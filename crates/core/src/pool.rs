//! Persistent host worker pool: spawn once, park between bursts, wake per
//! macro-step through an epoch-stamped dispatch cell.
//!
//! The parallel engine ([`crate::parstep::run_par`]) used to spawn a fresh
//! [`std::thread::scope`] for *every* macro-step's burst phase. On the
//! deep benchmark tree that is ~350 spawn/join cycles per run, each of
//! which pays thread creation, a kernel wake, and scope teardown against a
//! burst worth only a couple hundred microseconds — which is why the
//! committed `par_vs_macro` numbers hovered at parity instead of scaling.
//! Horie & Fukunaga's block-parallel IDA\* gets its GPU wins by keeping a
//! persistent grid of workers fed across iterations; the same shape
//! applies to host threads. A [`WorkerPool`] is that shape: `n` workers
//! spawned once per run, parked on a condvar between bursts, woken by an
//! epoch bump, and joined exactly once when the pool drops.
//!
//! **Dispatch protocol.** The pool owns one mutex-guarded cell
//! ([`DispatchCell`]) holding an epoch counter, a type-erased job pointer,
//! and an outstanding-worker count:
//!
//! 1. [`WorkerPool::dispatch`] publishes the job, bumps the epoch, sets
//!    `outstanding = workers`, and notifies the wake condvar.
//! 2. Every parked worker observes the epoch change, copies the job
//!    pointer, drops the lock, and runs the job. The dispatching thread
//!    runs the same job itself instead of idling — a pool of `n - 1`
//!    workers serves `n` participants.
//! 3. A worker finishing the job decrements `outstanding` (a drop guard,
//!    so a panicking job still decrements) and re-parks; the last one
//!    notifies the done condvar.
//! 4. `dispatch` returns only after `outstanding == 0` *and* its own job
//!    call finished — at which point every borrow the job carried is dead,
//!    which is what makes the lifetime erasure below sound.
//!
//! The job itself is a claim loop: callers publish per-chunk work in a
//! fixed order and participants claim chunks off an atomic cursor, exactly
//! as the scoped-spawn design did ([`crate::parstep`] module docs carry
//! the determinism argument). The pool changes *who runs* a chunk and how
//! cheaply the crew assembles — never what any chunk does, so schedules
//! stay bit-identical at any worker count.
//!
//! **Quiescence.** Between dispatches every worker is parked in
//! `Condvar::wait`; [`WorkerPool::is_quiescent`] reports it. The engines
//! only reach a macro-step boundary (trigger checkpoint, balancing phase,
//! snapshot capture, fault injection) after `dispatch` returned, so a
//! checkpoint always serializes complete, settled state — the kill→resume
//! differential relies on that, and the par engine debug-asserts it at
//! every boundary.
//!
//! A panicking job neither deadlocks nor detaches workers: the panic flag
//! is re-raised on the dispatching thread after the join, and `Drop` still
//! parks-then-joins every worker (shutdown on `Outcome` return, goal-stop
//! early exit, and checkpoint-kill all ride the same drop path —
//! `tests/pool_lifecycle.rs` counts OS threads to prove nothing leaks or
//! wedges).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased borrow of the dispatched job. The pointee lives on the
/// dispatching thread's stack; the completion join in [`WorkerPool::dispatch`]
/// guarantees no worker touches it after `dispatch` returns, which is the
/// entire safety argument for the `Send` below.
struct JobPtr(*const (dyn Fn() + Sync));

// SAFETY: the pointer is only dereferenced by pool workers between the
// epoch bump and the completion notification, a window during which the
// dispatching thread is blocked inside `dispatch` keeping the pointee
// alive. `dyn Fn + Sync` makes concurrent calls themselves safe.
unsafe impl Send for JobPtr {}

/// The epoch-stamped dispatch cell (under the pool's one mutex).
struct DispatchCell {
    /// Bumped once per dispatch; workers park until it moves.
    epoch: u64,
    /// The published job for the current epoch (`None` while idle).
    job: Option<JobPtr>,
    /// Workers still running the current epoch's job.
    outstanding: usize,
    /// A job call panicked this epoch (re-raised by `dispatch`).
    panicked: bool,
    /// Workers must exit instead of parking (set once, by `Drop`).
    shutdown: bool,
}

struct Shared {
    cell: Mutex<DispatchCell>,
    /// Workers park here between epochs.
    wake: Condvar,
    /// The dispatcher parks here until `outstanding == 0`.
    done: Condvar,
}

/// A persistent crew of parked worker threads, woken per dispatch.
///
/// `WorkerPool::new(n)` spawns `n` OS threads; [`WorkerPool::dispatch`]
/// runs one job on all of them *plus the calling thread* and returns when
/// every participant finished. Dropping the pool joins every worker
/// deterministically. Public because the dispatch primitive is exactly
/// what higher layers (the bench harness, a future job server) need to
/// measure or reuse; the engines construct one pool per `run_par` call.
pub struct WorkerPool {
    shared: &'static Shared,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `workers` parked worker threads. `workers == 0` is a valid
    /// degenerate pool: `dispatch` then runs the job inline only.
    pub fn new(workers: usize) -> Self {
        // The shared cell must outlive the worker threads (which are
        // `'static`); it is reclaimed in `Drop` after every worker joined.
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            cell: Mutex::new(DispatchCell {
                epoch: 0,
                job: None,
                outstanding: 0,
                panicked: false,
                shutdown: false,
            }),
            wake: Condvar::new(),
            done: Condvar::new(),
        }));
        let handles = (0..workers)
            .map(|i| {
                std::thread::Builder::new()
                    .name(format!("uts-pool-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of pool worker threads (the calling thread adds one more
    /// participant to every dispatch).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Run `job` on every pool worker and on the calling thread, returning
    /// after all of them finished it. Jobs are expected to be claim loops
    /// over caller-published work items, so every participant calls the
    /// same closure and idle participants fall straight through. A panic
    /// inside any participant's call is re-raised here after the join.
    pub fn dispatch(&self, job: &(dyn Fn() + Sync)) {
        {
            let mut cell = self.shared.cell.lock().expect("pool mutex");
            debug_assert_eq!(cell.outstanding, 0, "dispatch while a dispatch is in flight");
            // SAFETY: lifetime erasure only — the pointer is dead (cleared
            // below, after the completion join) before `job`'s borrow ends.
            let erased: *const (dyn Fn() + Sync + 'static) = unsafe {
                std::mem::transmute::<*const (dyn Fn() + Sync), *const (dyn Fn() + Sync + 'static)>(
                    job,
                )
            };
            cell.job = Some(JobPtr(erased));
            cell.epoch += 1;
            cell.outstanding = self.handles.len();
            cell.panicked = false;
            self.shared.wake.notify_all();
        }
        // The dispatching thread is a participant, not a supervisor.
        let mine = catch_unwind(AssertUnwindSafe(job));
        let panicked = {
            let mut cell = self.shared.cell.lock().expect("pool mutex");
            while cell.outstanding > 0 {
                cell = self.shared.done.wait(cell).expect("pool wait");
            }
            // Every borrow the erased pointer carried is dead now; drop it
            // before returning so the cell never holds a dangling job.
            cell.job = None;
            cell.panicked
        };
        if let Err(payload) = mine {
            resume_unwind(payload);
        }
        if panicked {
            panic!("a pool worker's job panicked");
        }
    }

    /// True when no dispatch is in flight — every worker is parked and the
    /// cell holds no job. The engines assert this at macro-step boundaries:
    /// a snapshot must serialize settled state only.
    pub fn is_quiescent(&self) -> bool {
        let cell = self.shared.cell.lock().expect("pool mutex");
        cell.outstanding == 0 && cell.job.is_none()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut cell = self.shared.cell.lock().expect("pool mutex");
            cell.shutdown = true;
            self.shared.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            // A worker panic (outside a dispatched job) surfaces here; jobs
            // themselves are caught and re-raised by `dispatch`.
            h.join().expect("pool worker exited cleanly");
        }
        // All workers are gone; reclaim the leaked shared cell.
        // SAFETY: `shared` came from `Box::leak` in `new`, every thread
        // holding a reference has been joined, and `drop` runs once.
        unsafe {
            drop(Box::from_raw(self.shared as *const Shared as *mut Shared));
        }
    }
}

fn worker_loop(shared: &'static Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut cell = shared.cell.lock().expect("pool mutex");
            while !cell.shutdown && cell.epoch == seen_epoch {
                cell = shared.wake.wait(cell).expect("pool wait");
            }
            if cell.shutdown {
                return;
            }
            seen_epoch = cell.epoch;
            cell.job.as_ref().expect("epoch bumped with a job published").0
        };
        // SAFETY: see `JobPtr` — the dispatcher keeps the pointee alive
        // until `outstanding` returns to zero, which happens strictly
        // after this call returns.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job)() }));
        let mut cell = shared.cell.lock().expect("pool mutex");
        if result.is_err() {
            cell.panicked = true;
        }
        cell.outstanding -= 1;
        if cell.outstanding == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn dispatch_runs_the_job_on_every_participant() {
        let pool = WorkerPool::new(3);
        let calls = AtomicUsize::new(0);
        pool.dispatch(&|| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        // 3 workers + the dispatching thread.
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert!(pool.is_quiescent());
    }

    #[test]
    fn epochs_are_reusable_back_to_back() {
        let pool = WorkerPool::new(2);
        let calls = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.dispatch(&|| {
                calls.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(calls.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn a_zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let calls = AtomicUsize::new(0);
        pool.dispatch(&|| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn claim_loops_cover_every_item_exactly_once() {
        let pool = WorkerPool::new(4);
        let n = 1000usize;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let cursor = AtomicUsize::new(0);
        pool.dispatch(&|| loop {
            let k = cursor.fetch_add(1, Ordering::Relaxed);
            if k >= n {
                break;
            }
            hits[k].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn drop_joins_workers_without_a_dispatch() {
        let pool = WorkerPool::new(4);
        assert!(pool.is_quiescent());
        drop(pool); // must not hang or leak
    }

    #[test]
    fn a_panicking_job_is_reraised_and_the_pool_survives() {
        let pool = WorkerPool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.dispatch(&|| panic!("boom"));
        }));
        assert!(err.is_err());
        // The pool is still usable and still joins cleanly.
        let calls = AtomicUsize::new(0);
        pool.dispatch(&|| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }
}
