//! Parallel depth-first search on lockstep SIMD machines — the algorithms
//! of Karypis & Kumar, *Unstructured Tree Search on SIMD Parallel
//! Computers* (SC'92 / TR 92-21).
//!
//! An efficient SIMD tree-search formulation has two components (Sec. 1):
//!
//! 1. a **triggering mechanism** deciding when the whole machine leaves the
//!    search phase to redistribute work — [`Trigger::Static`] (`A <= x·P`),
//!    [`Trigger::Dp`] (Powley/Ferguson/Korf, eq. 2) and the paper's new
//!    [`Trigger::Dk`] (`w_idle >= L·P`, eq. 4);
//! 2. a **redistribution mechanism** pairing busy with idle processors —
//!    [`Matching::Ngp`] (plain rendezvous enumeration) and the paper's new
//!    [`Matching::Gp`] (rendezvous rotated by a *global pointer* so the
//!    donation burden is spread round-robin).
//!
//! Any combination can run ([`Scheme`]); the paper's Table 1 lists the six
//! it studies. The related-work schemes of Sec. 8 are expressible too:
//! FESS/FEGS via [`Trigger::AnyIdle`] with [`TransferMode::Single`] /
//! [`TransferMode::Equalize`], and the Frye–Myczkowski nearest-neighbor
//! scheme via [`nn::run_nearest_neighbor`].
//!
//! The executable model is a *cycle-quantized lockstep simulation*: every
//! search-phase step, each processor with work expands exactly one node;
//! virtual time advances by `U_calc` per cycle and by the cost model's
//! `t_lb` per balancing phase (see `uts-machine`). Host-side rayon
//! parallelism accelerates a cycle without changing its semantics, so runs
//! are deterministic given `(problem, config)`.
//!
//! ```
//! use uts_core::{EngineConfig, Scheme, run};
//! use uts_machine::CostModel;
//! use uts_synth::GeometricTree;
//!
//! let tree = GeometricTree { seed: 1, b_max: 8, depth_limit: 6 };
//! let cfg = EngineConfig::new(64, Scheme::gp_static(0.8), CostModel::cm2());
//! let outcome = run(&tree, &cfg);
//! assert!(outcome.report.efficiency > 0.0);
//! // Anomaly-free: the parallel search expands the serial node count.
//! assert_eq!(outcome.report.nodes_expanded, uts_tree::serial_dfs(&tree).expanded);
//! ```

pub mod census;
pub mod ckpt;
pub mod driver;
pub mod engine;
pub mod macrostep;
pub mod matcher;
pub mod nn;
pub mod parstep;
pub mod pool;
pub mod reference;
pub mod report_json;
pub mod scheme;
pub mod store;
pub mod trigger;

pub use ckpt::{
    config_fingerprint, resume_from_bytes, resume_with, CheckpointCfg, CheckpointSink, Snapshot,
};
pub use driver::{LockstepDriver, MergedBurst, StepStatus};
pub use engine::{
    expansion_burst, run_fused, run_with, CycleStats, EngineConfig, EngineKind, MacroStep, Outcome,
};
pub use macrostep::run;
pub use matcher::MatchState;
pub use parstep::run_par;
pub use pool::WorkerPool;
pub use reference::run_reference;
pub use report_json::run_report_json;
pub use scheme::{Matching, Scheme, TransferMode, Trigger};
pub use store::{CountedMove, StackStore};
