//! The matching step of a balancing phase: rendezvous allocation with or
//! without the paper's global pointer (Sec. 2.2 and Fig. 2).

use serde::{Deserialize, Serialize};
use uts_scan::{
    rendezvous_match, rendezvous_match_from, rendezvous_match_from_into, rendezvous_match_packed,
    MatchScratch, Pair,
};

use crate::scheme::Matching;

/// Matching state carried across balancing phases. Only GP has state: the
/// *global pointer* remembering the last donor of the previous phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchState {
    matching: Matching,
    /// Index of the last processor that donated work, if any (GP only).
    global_pointer: Option<usize>,
}

impl MatchState {
    /// Fresh state for the given matching scheme.
    pub fn new(matching: Matching) -> Self {
        Self { matching, global_pointer: None }
    }

    /// Rebuild matching state from a checkpoint: the scheme plus the saved
    /// global pointer (always `None` for NGP, which carries no state).
    pub fn restore(matching: Matching, global_pointer: Option<usize>) -> Self {
        debug_assert!(
            matching == Matching::Gp || global_pointer.is_none(),
            "NGP matching has no pointer to restore"
        );
        Self { matching, global_pointer }
    }

    /// The matching scheme.
    pub fn matching(&self) -> Matching {
        self.matching
    }

    /// Current global pointer (None before the first GP donation).
    pub fn global_pointer(&self) -> Option<usize> {
        self.global_pointer
    }

    /// GP start index for the next round on a `p`-processor machine: one
    /// past the last donor, wrapping at `p`. All three entry points wrap
    /// with the machine size — the flag entry points used to wrap with
    /// `busy.len()`, which silently diverged from the packed entry point
    /// whenever a caller passed a short flag slice.
    fn start_for(&self, p: usize) -> usize {
        match self.matching {
            Matching::Ngp => 0,
            Matching::Gp => self.global_pointer.map_or(0, |gp| {
                debug_assert!(gp < p, "global pointer {gp} outside machine of size {p}");
                (gp + 1) % p.max(1)
            }),
        }
    }

    /// Pair busy donors with idle receivers for one transfer round, and —
    /// for GP — advance the global pointer to the round's last donor.
    ///
    /// `busy[i]` must mean "processor i can split its work" and `idle[i]`
    /// "processor i has none"; a processor holding a single node is
    /// neither. Returns `min(A, I)` pairs.
    pub fn match_round(&mut self, busy: &[bool], idle: &[bool]) -> Vec<Pair> {
        debug_assert_eq!(busy.len(), idle.len(), "flag slices must both have length P");
        let pairs = match self.matching {
            Matching::Ngp => rendezvous_match(busy, idle),
            Matching::Gp => rendezvous_match_from(busy, idle, self.start_for(busy.len())),
        };
        if self.matching == Matching::Gp {
            if let Some(last) = pairs.last() {
                self.global_pointer = Some(last.donor);
            }
        }
        pairs
    }

    /// [`MatchState::match_round`] into caller-owned buffers: `pairs` is
    /// cleared and refilled, `scratch` keeps the packed enumerations warm
    /// between rounds. Pointer updates and output are identical to the
    /// allocating entry point; the engine hot loop calls this one so a
    /// whole run's balancing phases share one set of buffers.
    pub fn match_round_into(
        &mut self,
        busy: &[bool],
        idle: &[bool],
        scratch: &mut MatchScratch,
        pairs: &mut Vec<Pair>,
    ) {
        debug_assert_eq!(busy.len(), idle.len(), "flag slices must both have length P");
        let start = self.start_for(busy.len());
        rendezvous_match_from_into(busy, idle, start, scratch, pairs);
        if self.matching == Matching::Gp {
            if let Some(last) = pairs.last() {
                self.global_pointer = Some(last.donor);
            }
        }
    }

    /// [`MatchState::match_round`] over *already packed* busy/idle
    /// enumerations (ascending; `packed_idle` may be truncated to the first
    /// `min(A, I)` idle PEs). `p` is the machine size, needed to wrap the
    /// global pointer. The engine hot loop uses this entry point because it
    /// maintains the enumerations incrementally — deriving them from flag
    /// vectors every round would cost O(P) per round. Pointer updates and
    /// output are identical to the flag-based entry points.
    pub fn match_round_packed(
        &mut self,
        p: usize,
        packed_busy: &[usize],
        packed_idle: &[usize],
        pairs: &mut Vec<Pair>,
    ) {
        debug_assert!(packed_busy.iter().all(|&i| i < p), "packed busy index outside machine");
        debug_assert!(packed_idle.iter().all(|&i| i < p), "packed idle index outside machine");
        let start = self.start_for(p);
        rendezvous_match_packed(packed_busy, packed_idle, start, pairs);
        if self.matching == Matching::Gp {
            if let Some(last) = pairs.last() {
                self.global_pointer = Some(last.donor);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: bool = true;
    const I: bool = false;

    fn idle_of(busy: &[bool]) -> Vec<bool> {
        busy.iter().map(|&b| !b).collect()
    }

    /// The full Fig. 2 walk-through: same busy pattern in two consecutive
    /// phases; nGP repeats its matching, GP rotates it.
    #[test]
    fn figure2_two_rounds() {
        // PEs (0-based): 0..7; busy everywhere except 5 and 6.
        let busy = [B, B, B, B, B, I, I, B];
        let idle = idle_of(&busy);

        // nGP: always matches idle 5,6 to busy 0,1.
        let mut ngp = MatchState::new(Matching::Ngp);
        for _ in 0..2 {
            let pairs = ngp.match_round(&busy, &idle);
            let donors: Vec<usize> = pairs.iter().map(|p| p.donor).collect();
            assert_eq!(donors, vec![0, 1]);
        }

        // GP with pointer initially at PE 4 (paper's PE 5): donors 7, 0.
        let mut gp = MatchState::new(Matching::Gp);
        gp.global_pointer = Some(4);
        let pairs = gp.match_round(&busy, &idle);
        let donors: Vec<usize> = pairs.iter().map(|p| p.donor).collect();
        assert_eq!(donors, vec![7, 0]);
        assert_eq!(gp.global_pointer(), Some(0), "pointer advanced to last donor");

        // Second phase with the same pattern: donors 1, 2 (paper's 2, 3).
        let pairs = gp.match_round(&busy, &idle);
        let donors: Vec<usize> = pairs.iter().map(|p| p.donor).collect();
        assert_eq!(donors, vec![1, 2]);
        assert_eq!(gp.global_pointer(), Some(2));
    }

    #[test]
    fn gp_first_round_matches_ngp() {
        let busy = [B, I, B, I];
        let idle = idle_of(&busy);
        let mut gp = MatchState::new(Matching::Gp);
        let mut ngp = MatchState::new(Matching::Ngp);
        assert_eq!(gp.match_round(&busy, &idle), ngp.match_round(&busy, &idle));
    }

    #[test]
    fn gp_pointer_unchanged_when_no_pairs() {
        let busy = [B, B, B, B];
        let idle = idle_of(&busy); // nobody idle
        let mut gp = MatchState::new(Matching::Gp);
        gp.global_pointer = Some(2);
        assert!(gp.match_round(&busy, &idle).is_empty());
        assert_eq!(gp.global_pointer(), Some(2));
    }

    #[test]
    fn gp_spreads_donations_evenly_over_many_rounds() {
        // 8 PEs, PEs 6,7 always idle: over 12 rounds each of the 6 busy
        // PEs should donate 4 times under GP (24 donations / 6 donors).
        let busy = [B, B, B, B, B, B, I, I];
        let idle = idle_of(&busy);
        let mut gp = MatchState::new(Matching::Gp);
        let mut counts = [0u32; 8];
        for _ in 0..12 {
            for p in gp.match_round(&busy, &idle) {
                counts[p.donor] += 1;
            }
        }
        assert_eq!(&counts[..6], &[4, 4, 4, 4, 4, 4]);

        // nGP concentrates the burden on PEs 0 and 1.
        let mut ngp = MatchState::new(Matching::Ngp);
        let mut counts = [0u32; 8];
        for _ in 0..12 {
            for p in ngp.match_round(&busy, &idle) {
                counts[p.donor] += 1;
            }
        }
        assert_eq!(&counts[..6], &[12, 12, 0, 0, 0, 0]);
    }

    #[test]
    fn match_round_into_tracks_match_round_exactly() {
        // Two independent GP states fed the same evolving busy patterns must
        // produce identical pairs AND identical pointer trajectories whether
        // they use the allocating or the buffered entry point.
        let patterns: [&[bool]; 4] =
            [&[B, B, B, I, I, B], &[I, B, B, B, I, I], &[B, I, B, I, B, I], &[B, B, I, I, I, B]];
        for matching in [Matching::Gp, Matching::Ngp] {
            let mut alloc = MatchState::new(matching);
            let mut buffered = MatchState::new(matching);
            let mut scratch = uts_scan::MatchScratch::default();
            let mut pairs = Vec::new();
            for busy in patterns {
                let idle = idle_of(busy);
                let expect = alloc.match_round(busy, &idle);
                buffered.match_round_into(busy, &idle, &mut scratch, &mut pairs);
                assert_eq!(pairs, expect, "{matching:?}");
                assert_eq!(buffered.global_pointer(), alloc.global_pointer(), "{matching:?}");
            }
        }
    }

    #[test]
    fn match_round_packed_tracks_match_round_exactly() {
        let patterns: [&[bool]; 4] =
            [&[B, B, B, I, I, B], &[I, B, B, B, I, I], &[B, I, B, I, B, I], &[B, B, I, I, I, B]];
        for matching in [Matching::Gp, Matching::Ngp] {
            let mut alloc = MatchState::new(matching);
            let mut packed = MatchState::new(matching);
            let mut pairs = Vec::new();
            for busy in patterns {
                let idle = idle_of(busy);
                let packed_busy: Vec<usize> =
                    busy.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
                let packed_idle: Vec<usize> =
                    idle.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
                let expect = alloc.match_round(busy, &idle);
                packed.match_round_packed(busy.len(), &packed_busy, &packed_idle, &mut pairs);
                assert_eq!(pairs, expect, "{matching:?}");
                assert_eq!(packed.global_pointer(), alloc.global_pointer(), "{matching:?}");
            }
        }
    }

    #[test]
    fn all_entry_points_wrap_the_pointer_identically() {
        // A donor at the last PE forces the wrap: the start index must be
        // (p-1 + 1) % p = 0 in every entry point. The flag entry points
        // used to wrap with busy.len() — identical here, but the shared
        // start_for makes the agreement structural, and this test pins the
        // rotated matching all three must produce after the wrap.
        let busy = [B, B, I, I, B, B, I, B];
        let idle = idle_of(&busy);
        let p = busy.len();
        let packed_busy: Vec<usize> =
            busy.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();
        let packed_idle: Vec<usize> =
            idle.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i).collect();

        let mut flag = MatchState::new(Matching::Gp);
        flag.global_pointer = Some(p - 1);
        let expect = flag.match_round(&busy, &idle);
        assert_eq!(expect.first().map(|pr| pr.donor), Some(0), "wrapped to PE 0");

        let mut buffered = MatchState::new(Matching::Gp);
        buffered.global_pointer = Some(p - 1);
        let mut scratch = uts_scan::MatchScratch::default();
        let mut pairs = Vec::new();
        buffered.match_round_into(&busy, &idle, &mut scratch, &mut pairs);
        assert_eq!(pairs, expect);
        assert_eq!(buffered.global_pointer(), flag.global_pointer());

        let mut packed = MatchState::new(Matching::Gp);
        packed.global_pointer = Some(p - 1);
        packed.match_round_packed(p, &packed_busy, &packed_idle, &mut pairs);
        assert_eq!(pairs, expect);
        assert_eq!(packed.global_pointer(), flag.global_pointer());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "outside machine of size")]
    fn short_flag_slice_with_wrapped_pointer_is_rejected() {
        // The silent-divergence case the bug allowed: the pointer sits at
        // PE 6 of an 8-PE machine, but a caller passes 4-long flag slices.
        // Wrapping with busy.len() would quietly start at (6+1) % 4 = 3;
        // wrapping with p would start at 7. Now it is a debug assertion.
        let busy = [B, B, I, I];
        let idle = idle_of(&busy);
        let mut gp = MatchState::new(Matching::Gp);
        gp.global_pointer = Some(6);
        let _ = gp.match_round(&busy, &idle);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "flag slices must both have length P")]
    fn mismatched_flag_slices_are_rejected() {
        let busy = [B, B, I];
        let idle = [I, I, B, B];
        let _ = MatchState::new(Matching::Ngp).match_round(&busy, &idle);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "packed busy index outside machine")]
    fn packed_indices_outside_the_machine_are_rejected() {
        let mut gp = MatchState::new(Matching::Gp);
        let mut pairs = Vec::new();
        gp.match_round_packed(4, &[1, 9], &[0], &mut pairs);
    }

    #[test]
    fn more_idle_than_busy_leaves_surplus_unmatched() {
        let busy = [B, I, I, I];
        let idle = idle_of(&busy);
        let mut gp = MatchState::new(Matching::Gp);
        let pairs = gp.match_round(&busy, &idle);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].donor, 0);
    }
}
