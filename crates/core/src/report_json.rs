//! Deterministic JSON run-report for a single engine run.
//!
//! [`run_report_json`] renders the schedule-invariant observables of an
//! [`Outcome`] — the headline counters plus, when the run recorded one,
//! the load-balance ledger (donation spread and per-phase trigger
//! provenance) — as a stable, hand-rolled JSON document. Stability is the
//! point: the same `(problem, config)` yields byte-identical text on every
//! engine, thread count and host, so the quick CI tier can diff the
//! report against a golden fixture (`tests/fixtures/run_report.json`) and
//! any schedule or accounting drift shows up as a one-line test failure.
//!
//! Hand-rolled for the same reason as the bench harness's JSON: the
//! schema is small, the values are integers and fixed-precision floats,
//! and a serializer dependency would add nothing but formatting
//! ambiguity.

use std::fmt::Write as _;

use uts_machine::TriggerKind;

use crate::engine::{EngineConfig, Outcome};

/// Render the run-report JSON (trailing newline included). Floats are
/// fixed at six decimals so the text is reproducible bit-for-bit.
pub fn run_report_json(cfg: &EngineConfig, out: &Outcome) -> String {
    let r = &out.report;
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"scheme\": \"{}\",", cfg.scheme.name());
    let _ = writeln!(s, "  \"p\": {},", cfg.p);
    let _ = writeln!(s, "  \"nodes_expanded\": {},", r.nodes_expanded);
    let _ = writeln!(s, "  \"n_expand\": {},", r.n_expand);
    let _ = writeln!(s, "  \"n_lb\": {},", r.n_lb);
    let _ = writeln!(s, "  \"n_transfers\": {},", r.n_transfers);
    let _ = writeln!(s, "  \"t_par_us\": {},", r.t_par);
    let _ = writeln!(s, "  \"t_calc_us\": {},", r.t_calc);
    let _ = writeln!(s, "  \"t_idle_us\": {},", r.t_idle);
    let _ = writeln!(s, "  \"t_lb_us\": {},", r.t_lb);
    let _ = writeln!(s, "  \"efficiency\": {:.6},", r.efficiency);
    let _ = writeln!(s, "  \"goals\": {},", out.goals);
    let _ = writeln!(s, "  \"truncated\": {},", out.truncated);
    let _ = writeln!(s, "  \"peak_stack_nodes\": {},", out.peak_stack_nodes);
    match &out.ledger {
        None => s.push_str("  \"ledger\": null\n"),
        Some(ledger) => {
            let spread = ledger.donation_spread();
            s.push_str("  \"ledger\": {\n");
            s.push_str("    \"donation_spread\": {\n");
            let _ = writeln!(s, "      \"total\": {},", spread.total);
            let _ = writeln!(s, "      \"donors\": {},", spread.donors);
            let _ = writeln!(s, "      \"max\": {},", spread.max);
            let _ = writeln!(s, "      \"mean\": {:.6},", spread.mean);
            let _ = writeln!(s, "      \"max_over_mean\": {:.6},", spread.max_over_mean);
            let _ = writeln!(s, "      \"gini\": {:.6}", spread.gini);
            s.push_str("    },\n");
            s.push_str("    \"phases\": [\n");
            for (i, ph) in ledger.phases.iter().enumerate() {
                let comma = if i + 1 < ledger.phases.len() { "," } else { "" };
                let f = &ph.firing;
                let _ = writeln!(
                    s,
                    "      {{\"at_cycle\": {}, \"trigger\": \"{}\", \"busy\": {}, \
                     \"idle\": {}, \"w_us\": {}, \"t_us\": {}, \"w_idle_us\": {}, \
                     \"l_estimate_us\": {}, \"horizon\": {}, \"rounds\": {}, \
                     \"transfers\": {}, \"cost_setup_us\": {}, \"cost_transfer_us\": {}, \
                     \"cost_multiplier\": {}, \"cost_total_us\": {}}}{comma}",
                    ph.at_cycle,
                    trigger_label(f.kind),
                    f.busy,
                    f.idle,
                    f.w,
                    f.t,
                    f.w_idle,
                    f.l_estimate,
                    ph.horizon,
                    ph.rounds,
                    ph.transfers,
                    ph.cost.setup,
                    ph.cost.transfer,
                    ph.cost.multiplier,
                    ph.cost.total,
                );
            }
            s.push_str("    ]\n  }\n");
        }
    }
    s.push_str("}\n");
    s
}

/// Stable JSON label for a trigger kind; static triggers carry their
/// integer boundary so the fixture pins the ⌊x·P⌋ arithmetic too.
fn trigger_label(kind: TriggerKind) -> String {
    match kind {
        TriggerKind::Init => "init".to_string(),
        TriggerKind::Static { threshold } => format!("static<={threshold}"),
        TriggerKind::Dp => "dp".to_string(),
        TriggerKind::Dk => "dk".to_string(),
        TriggerKind::AnyIdle => "any_idle".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macrostep::run;
    use crate::scheme::Scheme;
    use uts_machine::CostModel;
    use uts_synth::GeometricTree;

    #[test]
    fn report_without_ledger_says_null() {
        let tree = GeometricTree { seed: 3, b_max: 6, depth_limit: 4 };
        let cfg = EngineConfig::new(8, Scheme::gp_static(0.8), CostModel::cm2());
        let json = run_report_json(&cfg, &run(&tree, &cfg));
        assert!(json.contains("\"ledger\": null"));
        assert!(json.contains("\"scheme\": \"GP-S^0.80\""));
    }

    #[test]
    fn report_with_ledger_lists_every_phase() {
        let tree = GeometricTree { seed: 3, b_max: 8, depth_limit: 6 };
        let cfg = EngineConfig::new(32, Scheme::gp_dk(), CostModel::cm2()).with_ledger();
        let out = run(&tree, &cfg);
        let ledger = out.ledger.as_ref().expect("ledger was requested");
        let json = run_report_json(&cfg, &out);
        assert_eq!(json.matches("\"at_cycle\"").count(), ledger.phases.len());
        assert!(json.contains("\"donation_spread\""));
        // The init phase fires under a dynamic trigger at P=32.
        assert!(json.contains("\"trigger\": \"init\""));
    }

    #[test]
    fn report_is_identical_across_engines() {
        use crate::engine::EngineKind;
        let tree = GeometricTree { seed: 5, b_max: 8, depth_limit: 5 };
        let cfg = EngineConfig::new(64, Scheme::ngp_dp(), CostModel::cm2()).with_ledger();
        let texts: Vec<String> = EngineKind::ALL
            .iter()
            .map(|&k| {
                let c = cfg.clone().with_engine(k);
                run_report_json(&c, &crate::engine::run_with(&tree, &c))
            })
            .collect();
        assert!(texts.windows(2).all(|w| w[0] == w[1]));
    }
}
