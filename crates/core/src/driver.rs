//! The macro-step loop as a coordinator-side state machine.
//!
//! [`crate::macrostep::run`] owns everything: the stacks, the machine
//! accounting, the trigger, the balancing phase. A *sharded* machine
//! (`uts-shard`) splits that ownership — worker processes hold the stacks
//! and run the search-phase bursts, while one coordinator owns the
//! lockstep schedule: the horizon, the [`uts_machine::SimdMachine`]
//! accounting, the trigger decision, the matcher, the ledger, and the
//! balancing phase (driven through a [`StackStore`] whose splits happen
//! remotely). [`LockstepDriver`] is that coordinator half, factored out of
//! the macro engine so the two cannot drift: it calls the *same*
//! `compute_horizon`, `checkpoint_trigger` and `balancing_phase` the
//! in-process engines call, in the same order, on the same operands — the
//! per-PE length census is the only input, and the census a worker reports
//! after running [`crate::engine::expansion_burst`] over its slab is
//! bit-identical to the one the macro engine would have computed in
//! process. See DESIGN.md §13 for the full determinism argument.
//!
//! # Protocol
//!
//! One macro step, driven by the caller (lens = the caller-maintained
//! dense length mirror, updated from worker burst reports):
//!
//! 1. [`LockstepDriver::horizon`] — compute the event horizon `h`.
//! 2. Run the burst of `h` cycles on every active PE (remotely), merge the
//!    per-worker census into a [`MergedBurst`].
//! 3. [`LockstepDriver::absorb_burst`] — machine accounting, stop checks
//!    and trigger evaluation. On [`StepStatus::Continue`] with
//!    `fired == true` the caller **must** call [`LockstepDriver::balance`]
//!    next (the ledger recorder is armed and must be settled).
//! 4. [`LockstepDriver::finish_boundary`] — count the macro-step boundary;
//!    snapshot via [`LockstepDriver::snapshot`] if the caller's policy
//!    wants it.
//!
//! On [`StepStatus::Done`], call [`LockstepDriver::finish`] for the
//! [`Outcome`].

use uts_machine::SimdMachine;
use uts_tree::CkptNode;

use crate::ckpt::{capture, config_fingerprint};
use crate::engine::{
    balancing_phase, checkpoint_trigger, machine_report, EngineConfig, LbBuffers, LedgerRecorder,
    MacroStep, Outcome,
};
use crate::matcher::MatchState;
use crate::store::StackStore;

/// The merged census of one search-phase burst across all workers.
#[derive(Debug, Clone, Default)]
pub struct MergedBurst {
    /// PEs that entered the burst (sum of per-worker started counts; must
    /// equal the driver's active count).
    pub started: usize,
    /// Goal nodes found during the burst (sum of per-worker deltas).
    pub goals: u64,
    /// Largest stack observed during the burst (max of per-worker peaks).
    pub peak_stack_nodes: usize,
    /// Burst lengths of PEs that drained mid-burst, concatenated across
    /// workers in any order (the driver sorts). Empty when `h == 1`.
    pub deaths: Vec<u64>,
}

/// What the driver decided at the end of [`LockstepDriver::absorb_burst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// The run is over (goal stop, budget, or space exhausted); call
    /// [`LockstepDriver::finish`].
    Done,
    /// The run continues. When `fired`, the trigger fired effectively and
    /// the caller must run [`LockstepDriver::balance`] before the next
    /// step.
    Continue {
        /// The trigger fired; a balancing phase must run now.
        fired: bool,
    },
}

/// Coordinator half of the macro-step engine: everything except the
/// stacks. See the module docs for the step protocol.
pub struct LockstepDriver {
    cfg: EngineConfig,
    fingerprint: u64,
    machine: SimdMachine,
    matcher: MatchState,
    recorder: Option<LedgerRecorder>,
    donations: Vec<u32>,
    goals: u64,
    peak_stack_nodes: usize,
    in_init: bool,
    macro_steps: Vec<MacroStep>,
    /// Dense sorted list of PEs holding work (same invariants as the
    /// in-process engines' list).
    active: Vec<usize>,
    busy_count: usize,
    /// `P - active.len()` captured at the trigger checkpoint, consumed by
    /// the balancing phase of the same step.
    idle_at_checkpoint: usize,
    size_hist: Vec<u32>,
    count_ge: Vec<u32>,
    lb: LbBuffers,
    /// Macro-step boundaries completed (1-based snapshot numbering, same
    /// as the engines' checkpoint hook).
    step: u64,
    truncated: bool,
}

impl LockstepDriver {
    /// Driver for a fresh run: PE 0 holds the root (the caller seeds it in
    /// whichever worker owns PE 0), everything else idle — exactly the
    /// in-process engines' initial state.
    pub fn fresh(cfg: &EngineConfig) -> Self {
        assert!(cfg.p > 0, "need at least one processor");
        let mut machine = SimdMachine::new(cfg.p, cfg.cost);
        machine.record_active_trace(cfg.record_trace);
        Self {
            cfg: cfg.clone(),
            fingerprint: config_fingerprint(cfg),
            machine,
            matcher: MatchState::new(cfg.scheme.matching),
            recorder: cfg.record_ledger.then(|| LedgerRecorder::new(cfg.p)),
            donations: vec![0u32; cfg.p],
            goals: 0,
            peak_stack_nodes: 1,
            in_init: cfg.init_fraction.is_some(),
            macro_steps: Vec::new(),
            active: vec![0],
            busy_count: 0,
            idle_at_checkpoint: 0,
            size_hist: Vec::new(),
            count_ge: Vec::new(),
            lb: LbBuffers::default(),
            step: 0,
            truncated: false,
        }
    }

    /// Driver restored from a decoded snapshot — the coordinator-side
    /// mirror of [`crate::ckpt::resume_with`]'s state rebuild (the stacks
    /// themselves go back to the workers; the active list is derived from
    /// their lengths here, identically to the in-process resume).
    ///
    /// # Panics
    /// Panics if the snapshot's machine size or ledger presence
    /// contradicts `cfg` (impossible for snapshots decoded against this
    /// config's fingerprint).
    pub fn restore<N: CkptNode>(
        cfg: &EngineConfig,
        snapshot: &uts_ckpt::EngineSnapshot<N>,
    ) -> Self {
        assert_eq!(snapshot.p(), cfg.p, "snapshot machine size differs from the resuming config");
        assert_eq!(
            snapshot.recorder.is_some(),
            cfg.record_ledger,
            "snapshot ledger presence differs from the resuming config"
        );
        let active: Vec<usize> = (0..cfg.p).filter(|&i| !snapshot.stacks[i].is_empty()).collect();
        Self {
            cfg: cfg.clone(),
            fingerprint: config_fingerprint(cfg),
            machine: snapshot.machine.clone().restore(cfg.p, cfg.cost),
            matcher: MatchState::restore(cfg.scheme.matching, snapshot.global_pointer),
            recorder: snapshot
                .recorder
                .as_ref()
                .map(|r| LedgerRecorder::restore(r.receipts.clone(), r.phases.clone())),
            donations: snapshot.donations.clone(),
            goals: snapshot.goals,
            peak_stack_nodes: snapshot.peak_stack_nodes,
            in_init: snapshot.in_init,
            macro_steps: snapshot
                .macro_steps
                .iter()
                .map(|&(start_cycle, horizon, ran)| MacroStep { start_cycle, horizon, ran })
                .collect(),
            active,
            busy_count: 0,
            idle_at_checkpoint: 0,
            size_hist: Vec::new(),
            count_ge: Vec::new(),
            lb: LbBuffers::default(),
            step: snapshot.step,
            truncated: false,
        }
    }

    /// The event horizon of the next macro step. `lens` is the dense
    /// length mirror (all `P` entries).
    pub fn horizon(&mut self, lens: &[u32]) -> u64 {
        debug_assert_eq!(lens.len(), self.cfg.p);
        crate::macrostep::compute_horizon(
            &self.cfg,
            &self.machine,
            lens,
            self.active.len(),
            self.in_init,
            &mut self.size_hist,
            &mut self.count_ge,
        )
    }

    /// Account one completed burst of horizon `h` and evaluate the stop
    /// checks and the trigger — the checkpoint tail of the macro-step
    /// loop. `lens` is the *post-burst* length mirror.
    pub fn absorb_burst(&mut self, h: u64, lens: &[u32], mut burst: MergedBurst) -> StepStatus {
        debug_assert_eq!(lens.len(), self.cfg.p);
        debug_assert_eq!(burst.started, self.active.len(), "every active PE runs the burst");
        let start_cycle = self.machine.metrics().n_expand;
        self.goals += burst.goals;
        self.peak_stack_nodes = self.peak_stack_nodes.max(burst.peak_stack_nodes);
        // Post-burst census: filtering the sorted active list by the fresh
        // lengths reproduces the in-process engines' in-place compaction.
        self.active.retain(|&i| lens[i] > 0);
        self.busy_count = self.active.iter().filter(|&&i| lens[i] >= 2).count();
        let ran;
        if h == 1 {
            debug_assert!(burst.deaths.is_empty(), "single cycles report no deaths");
            self.machine.expansion_cycle(burst.started);
            ran = 1;
        } else {
            burst.deaths.sort_unstable();
            ran = if self.active.is_empty() {
                *burst.deaths.last().expect("had active PEs")
            } else {
                h
            };
            self.machine.expansion_cycles_with_deaths(burst.started, ran, &burst.deaths);
        }
        if self.cfg.record_horizons {
            self.macro_steps.push(MacroStep { start_cycle, horizon: h, ran });
        }

        if self.cfg.stop_on_goal && self.goals > 0 {
            return StepStatus::Done;
        }
        if self.cfg.max_cycles.is_some_and(|m| self.machine.metrics().n_expand >= m) {
            self.truncated = true;
            return StepStatus::Done;
        }
        if self.active.is_empty() {
            return StepStatus::Done;
        }

        self.idle_at_checkpoint = self.cfg.p - self.active.len();
        let fired = checkpoint_trigger(
            &self.cfg,
            &self.machine,
            &mut self.in_init,
            self.busy_count,
            self.idle_at_checkpoint,
            h,
            &mut self.recorder,
        );
        StepStatus::Continue { fired }
    }

    /// Run the balancing phase the last [`LockstepDriver::absorb_burst`]
    /// fired, over `store` (remote for a sharded machine). Must be called
    /// exactly when `absorb_burst` returned `fired == true`.
    pub fn balance<S: StackStore>(&mut self, store: &mut S) {
        balancing_phase(
            &self.cfg,
            &mut self.machine,
            &mut self.matcher,
            store,
            &mut self.active,
            &mut self.busy_count,
            &mut self.donations,
            &mut self.lb,
            self.idle_at_checkpoint,
            &mut self.peak_stack_nodes,
            &mut self.recorder,
        );
    }

    /// Count a completed macro-step boundary; returns its 1-based number
    /// (the same numbering the engines' checkpoint hook uses for
    /// `ckpt-{step:08}.bin` names).
    pub fn finish_boundary(&mut self) -> u64 {
        self.step += 1;
        self.step
    }

    /// Macro-step boundaries completed so far.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Encode a full engine snapshot of the current boundary.
    /// `stack_bytes` is the concatenation, in PE order, of every PE's
    /// stack encoding (the workers produce these with
    /// [`uts_tree::StackArena::encode_pe`]; byte-identical to the
    /// in-process [`uts_ckpt::StackSource::Arena`] capture, so sharded
    /// and single-process snapshots are interchangeable).
    pub fn snapshot(&self, stack_bytes: &[u8]) -> Vec<u8> {
        let stacks: uts_ckpt::StackSource<'_, u64> =
            uts_ckpt::StackSource::Encoded { p: self.cfg.p, bytes: stack_bytes };
        capture(
            self.step,
            self.fingerprint,
            self.in_init,
            self.goals,
            &self.donations,
            self.peak_stack_nodes,
            &self.matcher,
            &self.machine,
            self.recorder.as_ref(),
            &self.macro_steps,
            stacks,
        )
    }

    /// Sorted list of PEs currently holding work.
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// Goal nodes found so far.
    pub fn goals(&self) -> u64 {
        self.goals
    }

    /// Lockstep cycles executed so far (`N_expand`).
    pub fn cycles(&self) -> u64 {
        self.machine.metrics().n_expand
    }

    /// Close out the run. `killed` distinguishes a coordinator that parked
    /// (worker loss with a recoverable spill) from a completed run, with
    /// the same semantics as [`Outcome::killed`].
    pub fn finish(self, killed: bool) -> Outcome {
        let report = machine_report(self.machine);
        let ledger = self.recorder.map(|r| r.finish(&self.donations));
        Outcome {
            report,
            goals: self.goals,
            truncated: self.truncated,
            killed,
            donations: self.donations,
            peak_stack_nodes: self.peak_stack_nodes,
            macro_steps: self.macro_steps,
            ledger,
        }
    }
}

#[cfg(test)]
mod tests {
    //! The driver *is* the macro engine minus the stacks: drive it with an
    //! in-process [`StackArena`] + [`expansion_burst`] and the outcome
    //! must be bit-identical to [`crate::macrostep::run`]. This is the
    //! single-process version of the sharded differential suite.
    use super::*;
    use crate::engine::expansion_burst;
    use crate::scheme::Scheme;
    use uts_machine::CostModel;
    use uts_synth::GeometricTree;
    use uts_tree::{SearchStack, StackArena, TreeProblem};

    fn drive<P: TreeProblem>(problem: &P, cfg: &EngineConfig) -> Outcome {
        let mut driver = LockstepDriver::fresh(cfg);
        let mut stacks: Vec<SearchStack<P::Node>> =
            (0..cfg.p).map(|_| SearchStack::new()).collect();
        stacks[0] = SearchStack::from_root(problem.root());
        let mut arena = StackArena::from_stacks(stacks);
        let mut active: Vec<usize> = vec![0];
        let mut deaths = Vec::new();
        loop {
            let h = driver.horizon(arena.lens());
            let mut goals = 0u64;
            let mut peak = 0usize;
            let stats = expansion_burst(
                problem,
                &mut arena,
                &mut active,
                h,
                &mut goals,
                &mut peak,
                &mut deaths,
            );
            let burst = MergedBurst {
                started: stats.started,
                goals,
                peak_stack_nodes: peak,
                deaths: std::mem::take(&mut deaths),
            };
            match driver.absorb_burst(h, arena.lens(), burst) {
                StepStatus::Done => break,
                StepStatus::Continue { fired } => {
                    if fired {
                        driver.balance(&mut arena);
                        // Balancing feeds idle PEs: resync our local active
                        // list from the census (the driver keeps its own).
                        active.clear();
                        active.extend((0..cfg.p).filter(|&i| arena.lens()[i] > 0));
                    }
                    driver.finish_boundary();
                }
            }
        }
        driver.finish(false)
    }

    #[test]
    fn driver_reproduces_the_macro_engine_bit_for_bit() {
        let tree = GeometricTree { seed: 11, b_max: 8, depth_limit: 7 };
        for scheme in [
            Scheme::gp_dk(),
            Scheme::ngp_dk(),
            Scheme::gp_static(0.75),
            Scheme::gp_dp(),
            Scheme::fess(),
            Scheme::fegs(),
        ] {
            let cfg = EngineConfig::new(64, scheme, CostModel::cm2())
                .with_ledger()
                .with_horizon_log()
                .with_trace();
            let want = crate::macrostep::run(&tree, &cfg);
            let got = drive(&tree, &cfg);
            assert_eq!(got, want, "{}", scheme.name());
        }
    }

    #[test]
    fn driver_snapshot_resumes_under_the_macro_engine() {
        let tree = GeometricTree { seed: 5, b_max: 8, depth_limit: 6 };
        let cfg = EngineConfig::new(32, Scheme::gp_dk(), CostModel::cm2()).with_ledger();
        let want = crate::macrostep::run(&tree, &cfg);

        // Drive three steps, snapshot, then hand the snapshot to the
        // ordinary in-process resume path.
        let mut driver = LockstepDriver::fresh(&cfg);
        let mut stacks: Vec<SearchStack<_>> = (0..cfg.p).map(|_| SearchStack::new()).collect();
        stacks[0] = SearchStack::from_root(tree.root());
        let mut arena = StackArena::from_stacks(stacks);
        let mut active: Vec<usize> = vec![0];
        let mut deaths = Vec::new();
        for _ in 0..3 {
            let h = driver.horizon(arena.lens());
            let mut goals = 0u64;
            let mut peak = 0usize;
            let stats = expansion_burst(
                &tree,
                &mut arena,
                &mut active,
                h,
                &mut goals,
                &mut peak,
                &mut deaths,
            );
            let burst = MergedBurst {
                started: stats.started,
                goals,
                peak_stack_nodes: peak,
                deaths: std::mem::take(&mut deaths),
            };
            match driver.absorb_burst(h, arena.lens(), burst) {
                StepStatus::Done => panic!("run too short for the test"),
                StepStatus::Continue { fired } => {
                    if fired {
                        driver.balance(&mut arena);
                        active.clear();
                        active.extend((0..cfg.p).filter(|&i| arena.lens()[i] > 0));
                    }
                    driver.finish_boundary();
                }
            }
        }
        let mut stack_bytes = Vec::new();
        for i in 0..cfg.p {
            arena.encode_pe(i, &mut stack_bytes);
        }
        let bytes = driver.snapshot(&stack_bytes);
        let resumed = crate::ckpt::resume_from_bytes(&tree, &cfg, &bytes).expect("decode");
        assert_eq!(resumed, want, "driver snapshot must resume bit-identically");
    }
}
