//! The lockstep SIMD search engine (the algorithm of Sec. 2).
//!
//! "At any time, all the processors are either in a search phase or in a
//! load balancing phase. In the search phase, each processor searches a
//! disjoint part of the search space in a depth-first-search fashion by
//! performing node expansion cycles in lock-step. ... All processors switch
//! from the searching phase to the load balancing phase when a triggering
//! condition is satisfied. In the load balancing phase, the busy processors
//! split their work and share it with idle processors."
//!
//! The engine is cycle-quantized: one expansion cycle = every processor
//! with a non-empty stack pops and expands exactly one node.
//!
//! **Hot path.** [`run_fused`] below is the allocation-steady-state *fused*
//! pipeline: expansion and census run as one pass over a dense sorted list
//! of active processor indices; idle PEs are never visited (the idle set is
//! exactly the list's complement, and rendezvous matching only ever needs
//! its first `min(A, I)` members); work transfers and frame pushes recycle
//! pooled vectors instead of allocating. The default engine,
//! [`crate::macrostep::run`], goes one step further and batches the search
//! phase between trigger checkpoints. Both produce a lockstep schedule
//! bit-identical to the straightforward two-sweep loop kept in
//! [`crate::reference`] (enforced by property tests). See DESIGN.md §6,
//! "Engine hot path".

use uts_machine::{
    CostModel, LbPhaseRecord, Ledger, Report, SimdMachine, TriggerFiring, TriggerKind,
};
use uts_scan::{MatchScratch, Pair};
use uts_tree::{SearchStack, SplitPolicy, StackArena, TreeProblem};

use crate::matcher::MatchState;
use crate::scheme::{Scheme, TransferMode, Trigger};
use crate::store::{CountedMove, StackStore};
use crate::trigger::{should_balance, static_threshold, TriggerCtx};

/// Which executor [`run_with`] dispatches to. All four produce
/// bit-identical lockstep schedules (the contract enforced by
/// `tests/engine_equivalence.rs` and `tests/engine_differential.rs`); they
/// differ only in host-side speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The two-sweep oracle loop ([`crate::reference::run_reference`]).
    Reference,
    /// The PR 1 fused single-cycle pipeline ([`run_fused`]).
    Fused,
    /// The event-horizon macro-step engine ([`crate::macrostep::run`]).
    Macro,
    /// The host-parallel macro-step engine
    /// ([`crate::parstep::run_par`]).
    Par,
}

impl EngineKind {
    /// All engines, oracle first — handy for differential tests.
    pub const ALL: [EngineKind; 4] =
        [EngineKind::Reference, EngineKind::Fused, EngineKind::Macro, EngineKind::Par];

    /// Short stable name for labels and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Reference => "reference",
            EngineKind::Fused => "fused",
            EngineKind::Macro => "macro",
            EngineKind::Par => "par",
        }
    }

    /// Parse an engine name — the inverse of [`EngineKind::name`], plus the
    /// `ref` shorthand. Shared by the CLI and the job-server spec decoder.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "reference" | "ref" => Ok(EngineKind::Reference),
            "fused" => Ok(EngineKind::Fused),
            "macro" => Ok(EngineKind::Macro),
            "par" => Ok(EngineKind::Par),
            other => Err(format!("unknown engine `{other}` (reference|fused|macro|par)")),
        }
    }
}

/// Engine configuration: machine size, scheme, cost model, knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Ensemble size `P`.
    pub p: usize,
    /// The load-balancing scheme to run.
    pub scheme: Scheme,
    /// Machine timing model.
    pub cost: CostModel,
    /// Work-splitting policy (paper default: bottom-most alternative).
    pub split: SplitPolicy,
    /// Initial-distribution threshold: for dynamic triggers the paper runs
    /// static triggering with x = 0.85 "until 85% of the processors became
    /// active" (Sec. 7). `None` disables the special init phase (static
    /// triggers distribute naturally from the first cycle).
    pub init_fraction: Option<f64>,
    /// Record the per-cycle active-processor trace (Fig. 8).
    pub record_trace: bool,
    /// Stop at the end of the cycle in which the first goal is found
    /// (`false` = exhaustive search, the paper's anomaly-free setting).
    pub stop_on_goal: bool,
    /// Safety valve for tests: abort after this many expansion cycles.
    pub max_cycles: Option<u64>,
    /// Record every macro-step the macro engine takes
    /// ([`Outcome::macro_steps`]); ignored by the fused and reference
    /// engines. For horizon-soundness diagnostics and tests.
    pub record_horizons: bool,
    /// Record the load-balance ledger ([`Outcome::ledger`]): per-PE
    /// donation/receipt counts and per-phase trigger provenance + cost
    /// attribution. Off by default — the engines skip all ledger work
    /// (including the single-cycle engines' horizon replay) when unset, so
    /// the hot path pays nothing. The ledger is part of the bit-identical
    /// cross-engine contract: every engine and any thread count produces
    /// the same one.
    pub record_ledger: bool,
    /// Which executor [`run_with`] dispatches to (the direct entry points
    /// `run`, `run_fused`, `run_reference`, `run_par` ignore it).
    pub engine: EngineKind,
    /// Host worker threads for [`crate::parstep::run_par`]: `None` means
    /// "respect `RAYON_NUM_THREADS` if set, else one worker per available
    /// core". Ignored by the other engines, and **never** part of the
    /// schedule: any value yields the identical `Outcome`.
    pub threads: Option<usize>,
    /// Minimum `started_PEs × horizon` product worth waking the worker
    /// pool for; `0` fans every batch out, `u64::MAX` keeps every batch
    /// inline (see [`crate::parstep`]). Purely a host-side latency knob, never part of
    /// the schedule (and therefore excluded from the checkpoint
    /// fingerprint): the batch runs inline below the bar and produces the
    /// identical `Outcome` either way. The default,
    /// [`crate::parstep::DEFAULT_FAN_OUT_MIN_WORK`], is tuned for the
    /// pooled dispatch cost; see its docs for the derivation.
    pub fan_out_min_work: u64,
    /// Checkpoint/resume configuration ([`crate::ckpt`]): when armed, the
    /// run snapshots its complete state at macro-step boundaries (the same
    /// engine-invariant schedule the ledger replays) and honours any
    /// injected [`uts_ckpt::FaultPlan`]. Never part of the schedule — a
    /// checkpointing run produces the identical `Outcome` (unless killed).
    pub checkpoint: Option<crate::ckpt::CheckpointCfg>,
}

impl EngineConfig {
    /// A configuration with the paper's defaults for `scheme`: bottom
    /// splitting, exhaustive search, and the 0.85 init phase iff the
    /// trigger is dynamic.
    pub fn new(p: usize, scheme: Scheme, cost: CostModel) -> Self {
        Self {
            p,
            scheme,
            cost,
            split: SplitPolicy::Bottom,
            init_fraction: scheme.is_dynamic().then_some(0.85),
            record_trace: false,
            stop_on_goal: false,
            max_cycles: None,
            record_horizons: false,
            record_ledger: false,
            engine: EngineKind::Macro,
            threads: None,
            fan_out_min_work: crate::parstep::DEFAULT_FAN_OUT_MIN_WORK,
            checkpoint: None,
        }
    }

    /// Builder: enable the Fig. 8 active trace.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Builder: record the macro engine's event-horizon steps.
    pub fn with_horizon_log(mut self) -> Self {
        self.record_horizons = true;
        self
    }

    /// Builder: record the load-balance ledger.
    pub fn with_ledger(mut self) -> Self {
        self.record_ledger = true;
        self
    }

    /// Builder: override the split policy (ablation).
    pub fn with_split(mut self, split: SplitPolicy) -> Self {
        self.split = split;
        self
    }

    /// Builder: pick the executor [`run_with`] dispatches to.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Builder: pin the host worker count of the parallel engine.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Builder: override the parallel engine's fan-out threshold (the
    /// minimum `started_PEs × horizon` product worth waking the pool
    /// for). `0` fans every batch out; `u64::MAX` never does.
    pub fn with_fan_out_min_work(mut self, min_work: u64) -> Self {
        self.fan_out_min_work = min_work;
        self
    }

    /// Builder: snapshot at the boundaries `policy` selects, into a fresh
    /// in-memory sink (retarget with [`EngineConfig::with_checkpoint_cfg`]
    /// or [`crate::ckpt::CheckpointCfg::into_dir`]).
    pub fn with_checkpoint(mut self, policy: uts_ckpt::CheckpointPolicy) -> Self {
        self.checkpoint = Some(crate::ckpt::CheckpointCfg::new(policy));
        self
    }

    /// Builder: install a complete checkpoint configuration (policy, sink
    /// and optional fault).
    pub fn with_checkpoint_cfg(mut self, ckpt: crate::ckpt::CheckpointCfg) -> Self {
        self.checkpoint = Some(ckpt);
        self
    }

    /// Builder: kill the run at the fault plan's macro-step boundary
    /// (arming an empty checkpoint config if none exists yet, so a kill
    /// can be injected without any snapshot policy).
    pub fn with_fault(mut self, fault: uts_ckpt::FaultPlan) -> Self {
        self.checkpoint
            .get_or_insert_with(|| {
                crate::ckpt::CheckpointCfg::new(uts_ckpt::CheckpointPolicy::default())
            })
            .fault = Some(fault);
        self
    }
}

/// Run `problem` under the executor named by [`EngineConfig::engine`].
/// Every arm produces the same `Outcome` bit-for-bit.
pub fn run_with<P: TreeProblem>(problem: &P, cfg: &EngineConfig) -> Outcome {
    match cfg.engine {
        EngineKind::Reference => crate::reference::run_reference(problem, cfg),
        EngineKind::Fused => run_fused(problem, cfg),
        EngineKind::Macro => crate::macrostep::run(problem, cfg),
        EngineKind::Par => crate::parstep::run_par(problem, cfg),
    }
}

/// Result of a parallel run. `PartialEq` compares every observable —
/// report (including the `f64` efficiency, which is a pure function of the
/// integer time counters, so bitwise comparison is exact), goals,
/// donations, traces — which is what the differential suites assert on.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Machine accounting (efficiency, `N_expand`, `N_lb`, traces, …).
    /// `report.w` is set to the *measured* parallel node count; callers
    /// holding an independently measured serial `W` can re-derive
    /// efficiency via [`Outcome::efficiency_vs_serial`] (the two coincide
    /// in the paper's exhaustive, anomaly-free setting).
    pub report: Report,
    /// Goal nodes found.
    pub goals: u64,
    /// True if `max_cycles` aborted the run before exhaustion.
    pub truncated: bool,
    /// True if an injected [`uts_ckpt::FaultPlan`] killed the run at a
    /// macro-step boundary (the counters then cover only the completed
    /// prefix). Always false for straight runs and for resumed runs that
    /// finish, so the kill→resume differential can compare whole
    /// `Outcome`s.
    pub killed: bool,
    /// How many times each processor donated work — the burden GP exists
    /// to spread evenly ("to try to evenly distribute the burden of
    /// sharing work among the processors", Sec. 2.2). Analyze with
    /// `uts_analysis::stats` (e.g. the Gini coefficient).
    pub donations: Vec<u32>,
    /// High-water mark of untried alternatives on any single processor's
    /// stack — the per-PE memory requirement. (Sec. 8 criticizes a
    /// Frye–Myczkowski variant precisely because its memory requirements
    /// "become unbounded"; this makes the quantity observable.)
    pub peak_stack_nodes: usize,
    /// The macro engine's event-horizon steps, recorded only when
    /// [`EngineConfig::record_horizons`] is set (empty otherwise, and
    /// always empty for the fused and reference engines).
    pub macro_steps: Vec<MacroStep>,
    /// The load-balance ledger, recorded only when
    /// [`EngineConfig::record_ledger`] is set. Unlike `macro_steps` it is
    /// engine-invariant: all four engines produce the identical ledger
    /// (the single-cycle engines replay the macro engine's horizon
    /// schedule for the provenance records).
    pub ledger: Option<Ledger>,
}

/// One event-horizon macro-step taken by [`crate::macrostep::run`]: at
/// `start_cycle` the engine proved the trigger cannot (effectively) fire
/// for `horizon` cycles and ran `ran` consecutive expansion cycles without
/// a checkpoint (`ran < horizon` only when the whole ensemble drained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacroStep {
    /// `N_expand` when the step began.
    pub start_cycle: u64,
    /// The proved lower bound on cycles until the trigger could fire.
    pub horizon: u64,
    /// Expansion cycles actually executed in the step.
    pub ran: u64,
}

impl Outcome {
    /// Efficiency computed against an externally measured serial node
    /// count (eq. 9's definition with `T_calc = W_serial · U_calc`).
    pub fn efficiency_vs_serial(&self, w_serial: u64, cost: &CostModel) -> f64 {
        let t_calc = w_serial as f64 * cost.u_calc as f64;
        t_calc / (t_calc + self.report.t_idle as f64 + self.report.t_lb as f64)
    }
}

/// Initial (or restored) engine state shared by every executor: the
/// direct state a snapshot captures. Derived structures — the dense
/// active list, the splittable flags, the busy count — are pure functions
/// of the stacks and are rebuilt by each loop, never restored.
pub(crate) struct ResumeState<N> {
    pub machine: SimdMachine,
    pub matcher: MatchState,
    pub pes: Vec<SearchStack<N>>,
    pub goals: u64,
    pub donations: Vec<u32>,
    pub peak_stack_nodes: usize,
    pub in_init: bool,
    pub macro_steps: Vec<MacroStep>,
    pub recorder: Option<LedgerRecorder>,
    /// Macro-step boundaries completed before the snapshot (the hook
    /// continues boundary numbering from here).
    pub step: u64,
}

impl<N> ResumeState<N> {
    /// Fresh-run state: processor 0 holds the root, everything else zero.
    pub(crate) fn fresh<P: TreeProblem<Node = N>>(problem: &P, cfg: &EngineConfig) -> Self {
        let mut machine = SimdMachine::new(cfg.p, cfg.cost);
        machine.record_active_trace(cfg.record_trace);
        let mut pes: Vec<SearchStack<N>> = (0..cfg.p).map(|_| SearchStack::new()).collect();
        pes[0] = SearchStack::from_root(problem.root());
        Self {
            machine,
            matcher: MatchState::new(cfg.scheme.matching),
            pes,
            goals: 0,
            donations: vec![0u32; cfg.p],
            peak_stack_nodes: 1,
            // The init phase (dynamic triggers): alternate cycle / balance
            // until `init_fraction` of the PEs have work.
            in_init: cfg.init_fraction.is_some(),
            macro_steps: Vec::new(),
            recorder: cfg.record_ledger.then(|| LedgerRecorder::new(cfg.p)),
            step: 0,
        }
    }
}

/// Run `problem` to exhaustion (or first goal) under `cfg`, checking the
/// trigger after every cycle (the PR 1 fused pipeline). Kept as the
/// single-cycle baseline the macro engine is benchmarked against; new code
/// should call [`crate::macrostep::run`].
pub fn run_fused<P: TreeProblem>(problem: &P, cfg: &EngineConfig) -> Outcome {
    run_fused_from(problem, cfg, None)
}

pub(crate) fn run_fused_from<P: TreeProblem>(
    problem: &P,
    cfg: &EngineConfig,
    resume: Option<ResumeState<P::Node>>,
) -> Outcome {
    assert!(cfg.p > 0, "need at least one processor");
    let state = resume.unwrap_or_else(|| ResumeState::fresh(problem, cfg));
    let mut hook = crate::ckpt::Hook::new(cfg, state.step);
    let mut machine = state.machine;
    let mut matcher = state.matcher;
    // Per-processor DFS stacks in structure-of-arrays form: one flat node
    // slab per PE plus the dense `lens` mirror the census sweeps read. All
    // per-cycle scratch (pair lists, packed enumerations) lives in
    // long-lived buffers below, so a warmed-up cycle performs no allocator
    // traffic.
    let mut arena = StackArena::from_stacks(state.pes);
    let mut goals = state.goals;
    let mut donations = state.donations;
    let mut peak_stack_nodes = state.peak_stack_nodes;
    let mut in_init = state.in_init;
    let mut recorder = state.recorder;
    let mut truncated = false;
    let mut killed = false;

    // Ledger recording and checkpointing both replay the macro engine's
    // horizon schedule so per-phase provenance records and snapshot
    // boundaries stay engine-invariant: a window of `window_h` cycles is
    // certified at each macro-step boundary, and horizon soundness
    // guarantees no effective fire before the window's final checkpoint —
    // the fused loop's per-cycle trigger evaluation inside the window is
    // provably inert. All of this is skipped when both are off.
    let track = recorder.is_some() || hook.is_some();
    let mut size_hist: Vec<u32> = Vec::new();
    let mut count_ge: Vec<u32> = Vec::new();
    let mut window_h = 0u64;
    let mut h_remaining = 0u64;

    // Dense list of PEs holding work, kept sorted by index. Expansion and
    // census iterate this list only; a PE leaves it when its stack empties
    // (during the fused pass) and re-enters when a transfer feeds it. Its
    // complement is exactly the idle set, so no idle flags exist at all:
    // the matching derives the idle enumeration it needs (a `min(A, I)`
    // prefix — surplus idle PEs are never matched) by walking the gaps in
    // this list. Busy (= splittable) state needs no flag array either:
    // `arena.lens()[i] >= 2` reads it straight off the dense census state.
    let mut active: Vec<usize> = (0..cfg.p).filter(|&i| arena.len_of(i) > 0).collect();

    // Long-lived balancing buffers, reused across every round of every
    // balancing phase of the run.
    let mut lb = LbBuffers::default();

    loop {
        if track {
            if h_remaining == 0 {
                window_h = crate::macrostep::compute_horizon(
                    cfg,
                    &machine,
                    arena.lens(),
                    active.len(),
                    in_init,
                    &mut size_hist,
                    &mut count_ge,
                );
                h_remaining = window_h;
            }
            h_remaining -= 1;
        }

        // ---- fused expansion + census (one pass over the active list) ----
        let stats = fused_expansion_cycle(
            problem,
            &mut arena,
            &mut active,
            &mut goals,
            &mut peak_stack_nodes,
        );
        let mut busy_count = stats.busy;
        machine.expansion_cycle(stats.started);

        if cfg.stop_on_goal && goals > 0 {
            break;
        }
        if cfg.max_cycles.is_some_and(|m| machine.metrics().n_expand >= m) {
            truncated = true;
            break;
        }
        if active.is_empty() {
            break; // space exhausted
        }

        // ---- trigger + load-balancing phase (shared checkpoint tail) ----
        let idle = cfg.p - active.len();
        let fired = checkpoint_trigger(
            cfg,
            &machine,
            &mut in_init,
            busy_count,
            idle,
            window_h,
            &mut recorder,
        );
        if fired {
            debug_assert!(!track || h_remaining == 0, "effective fire inside a certified window");
            h_remaining = 0;
            balancing_phase(
                cfg,
                &mut machine,
                &mut matcher,
                &mut arena,
                &mut active,
                &mut busy_count,
                &mut donations,
                &mut lb,
                idle,
                &mut peak_stack_nodes,
                &mut recorder,
            );
        }
        // If no transfer was possible the trigger may keep firing, but the
        // `busy == 0 || idle == 0` guard inside `trigger_fires` prevents
        // livelock because a cycle always runs at the top of the loop.

        // ---- macro-step boundary (checkpoint + fault injection) ----
        if h_remaining == 0 {
            if let Some(hk) = hook.as_mut() {
                let dies = hk.boundary(fired, |step, fp| {
                    crate::ckpt::capture(
                        step,
                        fp,
                        in_init,
                        goals,
                        &donations,
                        peak_stack_nodes,
                        &matcher,
                        &machine,
                        recorder.as_ref(),
                        &[],
                        uts_ckpt::StackSource::Arena(&arena),
                    )
                });
                if dies {
                    killed = true;
                    break;
                }
            }
        }
    }

    let report = machine_report(machine);
    let ledger = recorder.map(|r| r.finish(&donations));
    Outcome {
        report,
        goals,
        truncated,
        killed,
        donations,
        peak_stack_nodes,
        macro_steps: Vec::new(),
        ledger,
    }
}

pub(crate) fn machine_report(machine: SimdMachine) -> Report {
    let w = machine.metrics().nodes_expanded;
    machine.finish(w)
}

/// Census of one fused expansion cycle (or one macro-step burst): how many
/// PEs ran it and how many finished it splittable.
pub struct CycleStats {
    /// PEs that expanded a node this cycle (= active-list length before).
    pub started: usize,
    /// PEs left with `len >= 2` afterwards.
    pub busy: usize,
}

/// One fused expansion + census cycle: a single branch-light pass over the
/// dense active list. Every listed PE holds work, so each pops exactly one
/// node; children are generated straight onto the PE's flat node slab (no
/// bounce through a per-PE child buffer, no frame vector at all), and the
/// post-push length lands in the dense `lens` mirror, which doubles as
/// this cycle's census entry — busy state is `lens[i] >= 2`, no flag array
/// to maintain. This is the single-cycle hot path shared by the fused
/// engine and the macro/par engines' one-cycle steps.
#[inline]
pub(crate) fn fused_expansion_cycle<P: TreeProblem>(
    problem: &P,
    arena: &mut StackArena<P::Node>,
    active: &mut Vec<usize>,
    goals: &mut u64,
    peak_stack_nodes: &mut usize,
) -> CycleStats {
    let (slabs, lens) = arena.parts_mut();
    let started = active.len();
    let mut busy_count = 0usize;
    let mut kept = 0usize;
    for scan in 0..started {
        let i = active[scan];
        let slab = &mut slabs[i];
        let node = slab.pop_next().expect("active PEs hold work");
        if problem.is_goal(&node) {
            *goals += 1;
        }
        slab.push_frame_with(|out| problem.expand(&node, out));
        let len = slab.len();
        lens[i] = len as u32;
        // A PE that empties leaves the active list (rejoining the idle set
        // implicitly); otherwise its fresh length is this cycle's census.
        if len > 0 {
            busy_count += (len >= 2) as usize;
            *peak_stack_nodes = (*peak_stack_nodes).max(len);
            active[kept] = i;
            kept += 1;
        }
    }
    active.truncate(kept);
    CycleStats { started, busy: busy_count }
}

/// One macro-step's worth of expansion over the dense active list: `h`
/// consecutive lockstep cycles (or until a PE drains), exactly the search
/// phase of [`crate::macrostep::run`] between two checkpoints. `h == 1`
/// runs [`fused_expansion_cycle`]'s single-cycle pass; `h > 1` runs one
/// tight cache-hot DFS burst per active PE and records each drained PE's
/// burst length in `death_cycles` (cleared first, **unsorted**) so the
/// caller can reconstruct the lockstep schedule via
/// [`uts_machine::SimdMachine::expansion_cycles_with_deaths`]. Public
/// because the sharded machine's workers (`uts-shard`) run the identical
/// helper over their slab — the bit-identity of the sharded schedule
/// reduces to this function being the single implementation of the search
/// phase. Machine accounting is the caller's job: it needs the *merged*
/// death list when the active list spans several workers.
pub fn expansion_burst<P: TreeProblem>(
    problem: &P,
    arena: &mut StackArena<P::Node>,
    active: &mut Vec<usize>,
    h: u64,
    goals: &mut u64,
    peak_stack_nodes: &mut usize,
    death_cycles: &mut Vec<u64>,
) -> CycleStats {
    death_cycles.clear();
    if h == 1 {
        return fused_expansion_cycle(problem, arena, active, goals, peak_stack_nodes);
    }
    let started = active.len();
    let (slabs, lens) = arena.parts_mut();
    let mut busy_count = 0usize;
    let mut kept = 0usize;
    for scan in 0..started {
        let i = active[scan];
        let slab = &mut slabs[i];
        let burst = slab.expand_burst(problem, h);
        *goals += burst.goals;
        *peak_stack_nodes = (*peak_stack_nodes).max(burst.peak);
        let s1 = slab.len();
        lens[i] = s1 as u32;
        if s1 == 0 {
            death_cycles.push(burst.expanded);
        } else {
            busy_count += (s1 >= 2) as usize;
            active[kept] = i;
            kept += 1;
        }
    }
    active.truncate(kept);
    CycleStats { started, busy: busy_count }
}

/// Long-lived balancing buffers, reused across every round of every
/// balancing phase of a run so a warmed-up phase allocates nothing.
#[derive(Default)]
pub(crate) struct LbBuffers {
    pub scratch: MatchScratch,
    pub pairs: Vec<Pair>,
    pub incoming: Vec<usize>,
    pub merge_buf: Vec<usize>,
    /// Per-pair transfer verdicts of the last [`StackStore::split_pairs`]
    /// round.
    pub ok: Vec<bool>,
    /// Counted-split requests of the current equalization round.
    pub reqs: Vec<CountedMove>,
    /// Per-request moved counts of the last [`StackStore::split_counts`]
    /// round.
    pub moved: Vec<usize>,
}

/// In-flight ledger state while a run executes: receipts accumulate
/// transfer-by-transfer, phase records are armed at the firing checkpoint
/// (capturing the trigger operands *before* balancing resets the phase
/// counters) and settled after the balancing phase runs. All mutation
/// happens in the engines' serial sections — the trigger checkpoint and
/// the balancing phase run on the main thread in every engine — so no
/// cross-thread merging exists to get wrong, which is the determinism
/// argument (DESIGN.md §7).
pub(crate) struct LedgerRecorder {
    receipts: Vec<u32>,
    phases: Vec<LbPhaseRecord>,
    /// Armed by [`checkpoint_trigger`] on an effective fire: the captured
    /// operands plus the event horizon of the macro step ending here.
    pending: Option<(TriggerFiring, u64)>,
}

impl LedgerRecorder {
    pub(crate) fn new(p: usize) -> Self {
        Self { receipts: vec![0; p], phases: Vec::new(), pending: None }
    }

    fn arm(&mut self, firing: TriggerFiring, horizon: u64) {
        debug_assert!(self.pending.is_none(), "previous firing never settled");
        self.pending = Some((firing, horizon));
    }

    /// Per-PE receipt counters, bumped by the transfer helpers.
    pub(crate) fn receipts_mut(&mut self) -> &mut [u32] {
        &mut self.receipts
    }

    /// Receipts accumulated so far (checkpoint capture).
    pub(crate) fn receipts_so_far(&self) -> &[u32] {
        &self.receipts
    }

    /// Phase records settled so far (checkpoint capture). At a macro-step
    /// boundary no firing is pending, so this is the complete state.
    pub(crate) fn phases_so_far(&self) -> &[LbPhaseRecord] {
        debug_assert!(self.pending.is_none(), "capture with an unsettled firing");
        &self.phases
    }

    /// Rebuild the recorder from a snapshot (a boundary never has a
    /// pending firing, so none is restored).
    pub(crate) fn restore(receipts: Vec<u32>, phases: Vec<LbPhaseRecord>) -> Self {
        Self { receipts, phases, pending: None }
    }

    /// Close out the armed firing after its balancing phase ran. A phase
    /// that performed no rounds charged the machine nothing and left no
    /// `PhaseEvent`, so the ledger drops it too (the fire is abandoned).
    pub(crate) fn settle(
        &mut self,
        cfg: &EngineConfig,
        machine: &SimdMachine,
        rounds: u32,
        transfers: u64,
    ) {
        let (firing, horizon) = self.pending.take().expect("settle without an armed firing");
        if rounds > 0 {
            self.phases.push(LbPhaseRecord {
                at_cycle: machine.metrics().n_expand,
                firing,
                horizon,
                rounds,
                transfers,
                cost: cfg.cost.lb_phase_cost_breakdown(cfg.p, rounds),
            });
        }
    }

    pub(crate) fn finish(self, donations: &[u32]) -> Ledger {
        debug_assert!(self.pending.is_none(), "run ended with an unsettled firing");
        Ledger { donations: donations.to_vec(), receipts: self.receipts, phases: self.phases }
    }
}

/// [`trigger_fires`] plus ledger provenance: on an effective fire, capture
/// the trigger operands (which balancing is about to reset) and the event
/// horizon of the step ending at this checkpoint. Every engine calls this
/// at its checkpoint tail; `horizon` is the macro step's computed horizon
/// (the single-cycle engines replay the same schedule when the ledger is
/// on, and pass 0 when it is off — the value is never read then).
pub(crate) fn checkpoint_trigger(
    cfg: &EngineConfig,
    machine: &SimdMachine,
    in_init: &mut bool,
    busy: usize,
    idle: usize,
    horizon: u64,
    recorder: &mut Option<LedgerRecorder>,
) -> bool {
    let was_init = *in_init;
    let fires = trigger_fires(cfg, machine, in_init, busy, idle);
    if fires {
        if let Some(rec) = recorder.as_mut() {
            let phase = machine.phase();
            let u = cfg.cost.u_calc;
            let kind = if was_init {
                TriggerKind::Init
            } else {
                match cfg.scheme.trigger {
                    Trigger::Static { x } => {
                        TriggerKind::Static { threshold: static_threshold(x, cfg.p) as u32 }
                    }
                    Trigger::Dp => TriggerKind::Dp,
                    Trigger::Dk => TriggerKind::Dk,
                    Trigger::AnyIdle => TriggerKind::AnyIdle,
                }
            };
            rec.arm(
                TriggerFiring {
                    kind,
                    busy: busy as u32,
                    idle: idle as u32,
                    w: phase.busy_pe_cycles * u,
                    t: phase.cycles * u,
                    w_idle: phase.idle_pe_cycles * u,
                    l_estimate: machine.estimated_lb_cost(),
                },
                horizon,
            );
        }
    }
    fires
}

/// Evaluate the checkpoint trigger (including the Sec. 7 init-phase
/// protocol) and decide whether a balancing phase runs. Shared by every
/// engine so the decision logic cannot drift between them. Returns false
/// when a fire would be a no-op (`busy == 0 || idle == 0`): such a fire
/// performs no transfer and leaves no trace in the schedule.
pub(crate) fn trigger_fires(
    cfg: &EngineConfig,
    machine: &SimdMachine,
    in_init: &mut bool,
    busy: usize,
    idle: usize,
) -> bool {
    let has_work = cfg.p - idle;
    let fire = if *in_init {
        let threshold = cfg.init_fraction.unwrap();
        if (has_work as f64) >= threshold * cfg.p as f64 {
            *in_init = false;
            // Hand over to the real trigger starting next cycle; do not
            // balance on the handover cycle itself.
            false
        } else {
            // Paper Sec. 7: during init every expansion cycle is followed
            // by a distribution cycle (static x = 0.85 fires whenever
            // A <= 0.85 P, which holds throughout init).
            true
        }
    } else {
        let ctx = TriggerCtx {
            p: cfg.p,
            busy,
            idle,
            phase: *machine.phase(),
            u_calc: cfg.cost.u_calc,
            l_estimate: machine.estimated_lb_cost(),
        };
        should_balance(cfg.scheme.trigger, &ctx)
    };
    fire && busy > 0 && idle > 0
}

/// One full load-balancing phase (all transfer modes), including the
/// machine accounting. Shared verbatim by the fused, macro and parallel
/// engines — and, via the [`StackStore`] abstraction, by the sharded
/// multi-process machine, whose coordinator runs this exact function over
/// a remote store so the balancing schedule cannot drift between the
/// in-process and sharded executors. The caller has already decided the
/// trigger fires effectively.
///
/// `peak_stack_nodes` is observed at *transfer time*: every fed receiver's
/// post-transfer length is folded in as the transfer lands, not at the
/// next expansion census. For the current transfer modes this is provably
/// redundant — `Single`/`Multiple` receivers start empty and get a chunk
/// strictly smaller than their donor's already-censused length, and
/// `Equalize` receivers end at most `ceil(total/P)`, which is bounded by
/// the censused maximum — so the reported peak (and the cross-engine
/// bit-identity) is unchanged. It exists so the high-water mark stays
/// honest by construction for any future transfer mode whose mid-phase
/// temporaries could exceed the post-phase stack tops (the unbounded-memory
/// failure of Sec. 8's Frye–Myczkowski variant), and the reference oracle
/// re-checks it with a full recount under `debug_assertions`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn balancing_phase<S: StackStore>(
    cfg: &EngineConfig,
    machine: &mut SimdMachine,
    matcher: &mut MatchState,
    store: &mut S,
    active: &mut Vec<usize>,
    busy_count: &mut usize,
    donations: &mut [u32],
    lb: &mut LbBuffers,
    idle: usize,
    peak_stack_nodes: &mut usize,
    recorder: &mut Option<LedgerRecorder>,
) {
    let mut rounds = 0u32;
    let mut transfers = 0u64;
    match cfg.scheme.transfers {
        TransferMode::Single => {
            pack_busy(active, store.lens(), &mut lb.scratch.packed_busy);
            let need = lb.scratch.packed_busy.len().min(cfg.p - active.len());
            pack_idle_prefix(active, cfg.p, need, &mut lb.scratch.packed_idle);
            matcher.match_round_packed(
                cfg.p,
                &lb.scratch.packed_busy,
                &lb.scratch.packed_idle,
                &mut lb.pairs,
            );
            transfers += apply_pairs(
                store,
                &lb.pairs,
                cfg.split,
                donations,
                busy_count,
                &mut lb.incoming,
                peak_stack_nodes,
                recorder.as_mut().map(LedgerRecorder::receipts_mut),
                &mut lb.ok,
            );
            merge_active(active, &mut lb.incoming, &mut lb.merge_buf);
            rounds = 1;
        }
        TransferMode::Multiple => {
            // Repeat rendezvous rounds until no idle PE can be fed
            // (required for D^P, Sec. 2.3). The lens mirror and the active
            // list are updated round-by-round, so no per-round refresh
            // sweep is needed; the merge runs each round so the next
            // round's enumerations see the PEs just fed.
            let mut idle_left = idle;
            loop {
                if *busy_count == 0 || idle_left == 0 {
                    break;
                }
                pack_busy(active, store.lens(), &mut lb.scratch.packed_busy);
                let need = lb.scratch.packed_busy.len().min(idle_left);
                pack_idle_prefix(active, cfg.p, need, &mut lb.scratch.packed_idle);
                matcher.match_round_packed(
                    cfg.p,
                    &lb.scratch.packed_busy,
                    &lb.scratch.packed_idle,
                    &mut lb.pairs,
                );
                if lb.pairs.is_empty() {
                    break;
                }
                let done = apply_pairs(
                    store,
                    &lb.pairs,
                    cfg.split,
                    donations,
                    busy_count,
                    &mut lb.incoming,
                    peak_stack_nodes,
                    recorder.as_mut().map(LedgerRecorder::receipts_mut),
                    &mut lb.ok,
                );
                merge_active(active, &mut lb.incoming, &mut lb.merge_buf);
                idle_left -= done as usize;
                transfers += done;
                rounds += 1;
            }
        }
        TransferMode::Equalize => {
            // FEGS: move counted chunks until node counts are near-uniform
            // (donors above average feed the poorest). Equalization touches
            // arbitrary PEs, so rebuild the active list and busy count
            // wholesale afterwards (it is already O(P) per round; one extra
            // sweep changes nothing asymptotic).
            rounds = equalize(
                store,
                &mut transfers,
                donations,
                peak_stack_nodes,
                recorder.as_mut().map(LedgerRecorder::receipts_mut),
                &mut lb.reqs,
                &mut lb.moved,
            );
            active.clear();
            *busy_count = 0;
            for (i, &len) in store.lens().iter().enumerate() {
                *busy_count += (len >= 2) as usize;
                if len > 0 {
                    active.push(i);
                }
            }
        }
    }
    if rounds > 0 {
        machine.lb_phase(rounds, transfers);
    }
    if let Some(rec) = recorder.as_mut() {
        rec.settle(cfg, machine, rounds, transfers);
    }
}

/// Pack the busy enumeration (ascending) from the dense active list: busy
/// implies active, so this is O(A) where a full lens sweep would be O(P).
/// Busy state is read straight off the dense census array (`lens[i] >= 2`).
pub(crate) fn pack_busy(active: &[usize], lens: &[u32], out: &mut Vec<usize>) {
    out.clear();
    out.extend(active.iter().copied().filter(|&i| lens[i] >= 2));
}

/// The first `need` idle PEs in ascending order — the gaps in the sorted
/// active list. Only the matched prefix is ever materialized (idle PEs are
/// fed in plain index order, Fig. 2), so the walk stops as soon as `need`
/// gaps are found, typically long before index P.
pub(crate) fn pack_idle_prefix(active: &[usize], p: usize, need: usize, out: &mut Vec<usize>) {
    out.clear();
    let mut next_active = 0usize;
    let mut i = 0usize;
    while out.len() < need && i < p {
        if next_active < active.len() && active[next_active] == i {
            next_active += 1;
        } else {
            out.push(i);
        }
        i += 1;
    }
}

/// Apply one round of matched transfers, maintaining the incremental
/// census: the busy count and the list of PEs that must (re)join the
/// active list (busy state itself lives in the store's lens mirror, which
/// the split primitives keep in sync). Every fed receiver's post-transfer
/// length is folded into `peak`, so the high-water mark observes
/// balancing-phase state the next expansion census would miss if the
/// receiver shrank first (see [`balancing_phase`]).
///
/// The round is applied as one [`StackStore::split_pairs`] batch and the
/// census accounting replayed afterwards in pair order. Within a
/// rendezvous round every donor and every receiver is a distinct PE (the
/// k-th busy feeds the k-th idle) and the sets are disjoint (receivers are
/// empty, donors splittable), so each PE's length is touched by exactly
/// one split and the post-batch reads equal the split-by-split
/// interleaving's — the batched form is bit-identical to the original
/// sequential one, while letting a sharded store ship the whole round in
/// one message exchange.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_pairs<S: StackStore>(
    store: &mut S,
    pairs: &[Pair],
    split: SplitPolicy,
    donations: &mut [u32],
    busy_count: &mut usize,
    incoming: &mut Vec<usize>,
    peak: &mut usize,
    mut receipts: Option<&mut [u32]>,
    ok: &mut Vec<bool>,
) -> u64 {
    #[cfg(debug_assertions)]
    for pair in pairs {
        debug_assert_ne!(pair.donor, pair.receiver);
        debug_assert_eq!(store.len_of(pair.receiver), 0);
    }
    store.split_pairs(pairs, split, ok);
    debug_assert_eq!(ok.len(), pairs.len());
    let mut done = 0;
    for (pair, &transferred) in pairs.iter().zip(ok.iter()) {
        if transferred {
            donations[pair.donor] += 1;
            if let Some(r) = receipts.as_deref_mut() {
                r[pair.receiver] += 1;
            }
            done += 1;
            // Donor stays non-empty but may drop below the busy threshold;
            // receiver now holds work (and may itself be splittable).
            *busy_count -= (!store.can_split(pair.donor)) as usize;
            *busy_count += store.can_split(pair.receiver) as usize;
            *peak = (*peak).max(store.len_of(pair.receiver));
            incoming.push(pair.receiver);
        }
    }
    done
}

/// Merge `incoming` (PEs just fed by transfers; disjoint from `active`)
/// into the sorted active list, reusing `buf` as the merge target.
pub(crate) fn merge_active(
    active: &mut Vec<usize>,
    incoming: &mut Vec<usize>,
    buf: &mut Vec<usize>,
) {
    if incoming.is_empty() {
        return;
    }
    // Receivers of a single round arrive ascending, but a multi-round phase
    // can interleave rounds; sort the (small) batch before the linear merge.
    incoming.sort_unstable();
    buf.clear();
    buf.reserve(active.len() + incoming.len());
    let (mut a, mut b) = (0, 0);
    while a < active.len() && b < incoming.len() {
        if active[a] < incoming[b] {
            buf.push(active[a]);
            a += 1;
        } else {
            buf.push(incoming[b]);
            b += 1;
        }
    }
    buf.extend_from_slice(&active[a..]);
    buf.extend_from_slice(&incoming[b..]);
    std::mem::swap(active, buf);
    incoming.clear();
}

/// FEGS equalization: repeatedly let every above-average PE ship its excess
/// to the poorest PEs until counts are within 1 of uniform (or progress
/// stops). Returns the number of transfer rounds. Donated chunks keep their
/// frame structure ([`StackArena::split_count_into`] reproduces
/// `split_count` + `merge_from` over the flat slabs); see DESIGN.md.
///
/// Each round is applied as one [`StackStore::split_counts`] batch: a
/// round's donors (`len > target`) and receivers (`len < target`) are
/// disjoint and each appears at most once, so the per-request
/// `excess`/`want` operands computed from the pre-round census equal the
/// sequential interleaving's, and the batch is bit-identical to it (the
/// same argument as [`apply_pairs`]).
pub(crate) fn equalize<S: StackStore>(
    store: &mut S,
    transfers: &mut u64,
    donations: &mut [u32],
    peak: &mut usize,
    mut receipts: Option<&mut [u32]>,
    reqs: &mut Vec<CountedMove>,
    moved: &mut Vec<usize>,
) -> u32 {
    let p = store.p();
    let total: usize = store.lens().iter().map(|&l| l as usize).sum();
    let target = total.div_ceil(p);
    let mut rounds = 0u32;
    // Bound the rounds: each round matches donors to receivers 1-1, so
    // log-ish rounds suffice; 2·log2(P)+4 is a generous cap.
    let cap = 2 * (usize::BITS - p.leading_zeros()) + 4;
    while rounds < cap {
        // Donors hold > target; receivers hold < target (poorest first ==
        // index order is fine; rendezvous semantics).
        let donors: Vec<usize> =
            (0..p).filter(|&i| store.len_of(i) > target && store.can_split(i)).collect();
        let receivers: Vec<usize> = (0..p).filter(|&i| store.len_of(i) < target).collect();
        if donors.is_empty() || receivers.is_empty() {
            break;
        }
        reqs.clear();
        for (&d, &r) in donors.iter().zip(&receivers) {
            let excess = store.len_of(d) - target;
            let want = target - store.len_of(r);
            reqs.push(CountedMove { donor: d, receiver: r, max_nodes: excess.min(want) });
        }
        store.split_counts(reqs, moved);
        debug_assert_eq!(moved.len(), reqs.len());
        let mut moved_any = false;
        for (req, &n) in reqs.iter().zip(moved.iter()) {
            if n > 0 {
                donations[req.donor] += 1;
                if let Some(rc) = receipts.as_deref_mut() {
                    rc[req.receiver] += 1;
                }
                *transfers += 1;
                *peak = (*peak).max(store.len_of(req.receiver));
                moved_any = true;
            }
        }
        rounds += 1;
        if !moved_any {
            break;
        }
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    // Behavioral tests drive the default (macro) engine; the fused loop is
    // covered by the smoke test below and the cross-engine equivalence
    // suite in `tests/engine_equivalence.rs`.
    use crate::macrostep::run;
    use crate::scheme::Scheme;
    use uts_machine::CostModel;
    use uts_synth::{BinomialTree, GeometricTree};
    use uts_tree::serial_dfs;

    fn geo(seed: u64) -> GeometricTree {
        GeometricTree { seed, b_max: 8, depth_limit: 6 }
    }

    fn all_schemes() -> Vec<Scheme> {
        let mut v: Vec<Scheme> = Scheme::table1(0.75).map(|(_, s)| s).to_vec();
        v.push(Scheme::gp_static(0.5));
        v.push(Scheme::ngp_static(0.9));
        v.push(Scheme::fess());
        v.push(Scheme::fegs());
        v
    }

    #[test]
    fn every_scheme_expands_the_serial_node_count() {
        let tree = geo(2);
        let w = serial_dfs(&tree).expanded;
        for scheme in all_schemes() {
            for p in [1usize, 4, 32, 128] {
                let cfg = EngineConfig::new(p, scheme, CostModel::cm2());
                let out = run(&tree, &cfg);
                assert!(!out.truncated);
                assert_eq!(
                    out.report.nodes_expanded,
                    w,
                    "{} P={p} must be anomaly-free",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn every_scheme_finds_the_same_goals() {
        let tree = BinomialTree::with_q(5, 32, 4, 0.2);
        let serial = serial_dfs(&tree);
        for scheme in all_schemes() {
            let cfg = EngineConfig::new(16, scheme, CostModel::cm2());
            let out = run(&tree, &cfg);
            assert_eq!(out.goals, serial.goals, "{}", scheme.name());
        }
    }

    #[test]
    fn single_processor_degenerates_to_serial() {
        let tree = geo(7);
        let serial = serial_dfs(&tree);
        let cfg = EngineConfig::new(1, Scheme::gp_static(0.9), CostModel::cm2());
        let out = run(&tree, &cfg);
        assert_eq!(out.report.n_expand, serial.expanded, "one cycle per node");
        assert_eq!(out.report.n_lb, 0, "nobody to balance with");
        assert!((out.report.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accounting_identity_holds_for_all_schemes() {
        let tree = geo(3);
        for scheme in all_schemes() {
            let cfg = EngineConfig::new(32, scheme, CostModel::cm2());
            let out = run(&tree, &cfg);
            assert!(out.report.accounting_identity_holds(), "{}", scheme.name());
        }
    }

    #[test]
    fn gp_does_no_more_balancing_than_ngp_at_high_x() {
        // The paper's headline effect (Table 2 / Fig. 3): at x > 0.5, GP
        // needs no more (usually fewer) balancing phases than nGP.
        let tree = GeometricTree { seed: 11, b_max: 8, depth_limit: 7 };
        for x in [0.7, 0.8, 0.9] {
            let gp = run(&tree, &EngineConfig::new(64, Scheme::gp_static(x), CostModel::cm2()));
            let ngp = run(&tree, &EngineConfig::new(64, Scheme::ngp_static(x), CostModel::cm2()));
            assert!(
                gp.report.n_lb <= ngp.report.n_lb,
                "x={x}: GP {} vs nGP {}",
                gp.report.n_lb,
                ngp.report.n_lb
            );
        }
    }

    #[test]
    fn higher_x_means_more_balancing_fewer_idle_cycles() {
        let tree = GeometricTree { seed: 13, b_max: 8, depth_limit: 7 };
        let lo = run(&tree, &EngineConfig::new(64, Scheme::gp_static(0.5), CostModel::cm2()));
        let hi = run(&tree, &EngineConfig::new(64, Scheme::gp_static(0.9), CostModel::cm2()));
        assert!(hi.report.n_lb >= lo.report.n_lb);
        assert!(hi.report.t_idle <= lo.report.t_idle);
    }

    #[test]
    fn trace_length_matches_cycle_count() {
        let tree = geo(4);
        let cfg = EngineConfig::new(32, Scheme::gp_dk(), CostModel::cm2()).with_trace();
        let out = run(&tree, &cfg);
        assert_eq!(out.report.active_trace.len(), out.report.n_expand);
        // Trace entries never exceed P.
        assert!(out.report.active_trace.iter().all(|a| a <= 32));
    }

    #[test]
    fn stop_on_goal_terminates_early() {
        let tree = BinomialTree::with_q(9, 64, 4, 0.22);
        let serial = serial_dfs(&tree);
        let mut cfg = EngineConfig::new(16, Scheme::gp_static(0.8), CostModel::cm2());
        cfg.stop_on_goal = true;
        let out = run(&tree, &cfg);
        if serial.goals > 0 {
            assert!(out.goals >= 1);
            assert!(out.report.nodes_expanded <= serial.expanded);
        }
    }

    #[test]
    fn max_cycles_truncates() {
        let tree = geo(5);
        let mut cfg = EngineConfig::new(8, Scheme::gp_static(0.8), CostModel::cm2());
        cfg.max_cycles = Some(3);
        let out = run(&tree, &cfg);
        assert!(out.truncated);
        assert_eq!(out.report.n_expand, 3);
    }

    #[test]
    fn dynamic_schemes_use_init_phase() {
        let cfg = EngineConfig::new(128, Scheme::gp_dk(), CostModel::cm2());
        assert_eq!(cfg.init_fraction, Some(0.85));
        let cfg = EngineConfig::new(128, Scheme::gp_static(0.8), CostModel::cm2());
        assert_eq!(cfg.init_fraction, None);
    }

    #[test]
    fn more_processors_do_not_increase_efficiency_of_fixed_w() {
        // The isoefficiency premise: fixed W, growing P ⇒ E falls.
        let tree = geo(6);
        let e: Vec<f64> = [4usize, 16, 64, 256]
            .iter()
            .map(|&p| {
                run(&tree, &EngineConfig::new(p, Scheme::gp_static(0.8), CostModel::cm2()))
                    .report
                    .efficiency
            })
            .collect();
        assert!(e.windows(2).all(|w| w[1] <= w[0] + 1e-9), "E must fall: {e:?}");
    }

    #[test]
    fn gp_spreads_the_donation_burden_more_evenly_than_ngp() {
        // The motivation for GP (Sec. 2.2): measured as the Gini
        // coefficient of per-PE donation counts.
        let tree = GeometricTree { seed: 11, b_max: 8, depth_limit: 7 };
        let gp = run(&tree, &EngineConfig::new(128, Scheme::gp_static(0.9), CostModel::cm2()));
        let ngp = run(&tree, &EngineConfig::new(128, Scheme::ngp_static(0.9), CostModel::cm2()));
        let g_gp = uts_analysis::gini(&gp.donations);
        let g_ngp = uts_analysis::gini(&ngp.donations);
        assert!(g_gp < g_ngp, "GP gini {g_gp:.3} must be below nGP gini {g_ngp:.3}");
    }

    #[test]
    fn peak_stack_is_positive_and_bounded_by_tree_depth_times_branching() {
        let tree = geo(3);
        let out = run(&tree, &EngineConfig::new(16, Scheme::gp_static(0.8), CostModel::cm2()));
        assert!(out.peak_stack_nodes >= 1);
        // Geometric tree: depth <= 6, branching <= 8 → a DFS stack holds
        // at most depth * (b_max - 1) + 1 alternatives plus split slack.
        assert!(out.peak_stack_nodes <= 6 * 8 + 8, "peak {}", out.peak_stack_nodes);
    }

    #[test]
    fn peak_stack_reconciles_across_engines_and_transfer_modes() {
        // The high-water mark is observed in two places: the expansion
        // census and (since the transfer-time fix) every receiver as its
        // transfer lands inside the balancing phase. The reference oracle
        // additionally recounts all P stacks after each settled phase under
        // debug_assertions. One scheme per transfer mode (Single, Multiple,
        // Equalize), engines compared pairwise.
        let tree = GeometricTree { seed: 11, b_max: 8, depth_limit: 7 };
        for scheme in [Scheme::gp_static(0.8), Scheme::gp_dp(), Scheme::fegs()] {
            let cfg = EngineConfig::new(64, scheme, CostModel::cm2());
            let oracle = crate::reference::run_reference(&tree, &cfg);
            for engine in [EngineKind::Fused, EngineKind::Macro, EngineKind::Par] {
                let out = run_with(&tree, &cfg.clone().with_engine(engine));
                assert_eq!(
                    out.peak_stack_nodes,
                    oracle.peak_stack_nodes,
                    "{} peak diverges from oracle under {}",
                    engine.name(),
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn donations_sum_to_transfer_count() {
        let tree = geo(3);
        for scheme in all_schemes() {
            let out = run(&tree, &EngineConfig::new(64, scheme, CostModel::cm2()));
            let total: u64 = out.donations.iter().map(|&d| d as u64).sum();
            assert_eq!(total, out.report.n_transfers, "{}", scheme.name());
        }
    }

    #[test]
    fn fused_engine_still_runs_the_full_space() {
        let tree = geo(2);
        let w = serial_dfs(&tree).expanded;
        let out = run_fused(&tree, &EngineConfig::new(32, Scheme::gp_dk(), CostModel::cm2()));
        assert!(!out.truncated);
        assert_eq!(out.report.nodes_expanded, w);
        assert!(out.macro_steps.is_empty(), "fused engine takes no macro-steps");
    }

    #[test]
    fn efficiency_vs_serial_matches_internal_when_anomaly_free() {
        let tree = geo(8);
        let w = serial_dfs(&tree).expanded;
        let cfg = EngineConfig::new(32, Scheme::gp_static(0.8), CostModel::cm2());
        let out = run(&tree, &cfg);
        let e = out.efficiency_vs_serial(w, &cfg.cost);
        assert!((e - out.report.efficiency).abs() < 1e-12);
    }
}
