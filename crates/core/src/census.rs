//! Dense census sweeps over the structure-of-arrays stack-length array.
//!
//! The engines keep every PE's stack length mirrored into one contiguous
//! `u32` array ([`uts_tree::StackArena::lens`], index = PE id). The
//! ensemble census — how many PEs are active, how many are busy
//! (splittable), and the stack-size distribution `count_ge` the
//! event-horizon bound reads — then becomes a handful of flat reductions
//! over that array instead of a pointer-chase through one heap-allocated
//! stack per PE.
//!
//! Every reduction here is written as a chunked loop over fixed-width
//! blocks with a branch-free body, the shape LLVM autovectorizes on stable
//! Rust (`std::simd` is still nightly-only; when it stabilizes these
//! bodies map 1:1 onto explicit `u32xN` lanes — see DESIGN.md §6.3). The
//! results are specified *exactly* against the per-stack recomputation the
//! engines used before (`tests/census_soa.rs` drives both on random stack
//! populations):
//!
//! * [`active_count`] = #{i : lens[i] > 0} — the paper's `A`;
//! * [`busy_count`]   = #{i : lens[i] >= 2} — PEs that can donate;
//! * [`build_hist`] + [`build_count_ge`] — the suffix-sum distribution
//!   `count_ge[t]` = #{active i : lens[i] >= t}, with `count_ge[0] = A`
//!   (idle PEs contribute `lens[i] == 0` and are skipped, exactly as the
//!   old active-list sweep never visited them; `hist[0] == 0` either way).
//!
//! On big ensembles the parallel engine runs the whole census on its
//! persistent worker pool instead: [`pooled_census`] cuts `lens` into
//! [`CHUNK`]-aligned slices (boundaries a pure function of the length and
//! participant count), reduces each slice with [`slice_census`] — the
//! same chunked kernels — and combines the per-slice partials **in slice
//! order** on the dispatching thread. All exact integer reductions, so
//! the combined result is bit-identical to the serial sweep at any worker
//! count (property-tested below across worker counts and awkward sizes);
//! below [`POOLED_CENSUS_MIN_LENS`] the serial sweep is already cheaper
//! than one dispatch and is used unconditionally.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::pool::WorkerPool;

/// Width of the reduction blocks. 64 `u32`s = one or two cache lines per
/// accumulator block, wide enough for any SIMD unit the compiler targets.
const CHUNK: usize = 64;

/// Ensembles below this many PEs run the census serially even when a pool
/// is offered: a full serial sweep of 8K `u32`s costs a couple of
/// microseconds — about one pool dispatch — so fanning it out only starts
/// paying above that (bench-derived on the `pool_dispatch` criterion
/// group, which prices a dispatch against the scoped-spawn baseline).
pub const POOLED_CENSUS_MIN_LENS: usize = 8192;

/// One slice's partial census: every reduction the engines read off the
/// dense length array, accumulated over a contiguous `lens` slice.
/// The `hist` buffer persists across macro-steps (allocation steadiness).
#[derive(Default, Debug)]
pub struct SliceCensus {
    /// `#{i in slice : lens[i] > 0}`.
    pub active: usize,
    /// `#{i in slice : lens[i] >= 2}`.
    pub busy: usize,
    /// Largest stack length in the slice.
    pub max: u32,
    /// `hist[s]` = slice PEs holding exactly `s > 0` nodes.
    pub hist: Vec<u32>,
}

/// Accumulate one contiguous slice's census into `out` (reusing its
/// histogram buffer). The per-slice work is the same chunked, branch-free
/// shape as the whole-array reductions above.
pub fn slice_census(lens: &[u32], out: &mut SliceCensus) {
    out.active = active_count(lens);
    out.busy = busy_count(lens);
    out.max = max_len(lens);
    out.hist.clear();
    out.hist.resize(out.max as usize + 1, 0);
    for &l in lens {
        if l > 0 {
            out.hist[l as usize] += 1;
        }
    }
}

/// Whole-ensemble census totals, assembled from slice partials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CensusTotals {
    /// The paper's `A`: PEs holding work.
    pub active: usize,
    /// PEs that can donate (`lens[i] >= 2`).
    pub busy: usize,
    /// Largest stack length in the ensemble.
    pub max: u32,
}

/// Pool-parallel census: cut `lens` into fixed contiguous slices (one per
/// pool participant, CHUNK-aligned so no reduction block straddles a
/// seam), let participants claim slices off an atomic cursor, and combine
/// the partials **in slice order** on the calling thread. Slice contents
/// and the combine order are fixed before any worker starts, and every
/// reduction is an exact integer sum or max, so the result is identical
/// to the serial sweep no matter which thread computes which slice —
/// the same determinism shape as the burst-phase chunk claiming
/// (DESIGN.md §6.4). `partials` is caller-owned scratch reused across
/// calls; `hist` receives the merged histogram exactly as
/// [`build_hist`] would produce it.
pub fn pooled_census(
    pool: &WorkerPool,
    lens: &[u32],
    partials: &mut Vec<SliceCensus>,
    hist: &mut Vec<u32>,
) -> CensusTotals {
    let participants = pool.workers() + 1;
    // CHUNK-aligned even split; the last slice takes the remainder.
    let slice_len = lens.len().div_ceil(participants).next_multiple_of(CHUNK);
    let n_slices = lens.len().div_ceil(slice_len.max(1)).max(1);
    if partials.len() < n_slices {
        partials.resize_with(n_slices, SliceCensus::default);
    }
    // One claimable census job: a lens slice and the partial it fills.
    type CensusJob<'a> = Mutex<Option<(&'a [u32], &'a mut SliceCensus)>>;
    {
        let jobs: Vec<CensusJob> = lens
            .chunks(slice_len.max(1))
            .zip(partials.iter_mut())
            .map(|(slice, out)| Mutex::new(Some((slice, out))))
            .collect();
        let cursor = AtomicUsize::new(0);
        let jobs = &jobs;
        let cursor = &cursor;
        pool.dispatch(&move || loop {
            let k = cursor.fetch_add(1, Ordering::Relaxed);
            if k >= jobs.len() {
                break;
            }
            let (slice, out) =
                jobs[k].lock().expect("census job lock").take().expect("census job claimed once");
            slice_census(slice, out);
        });
    }
    // Combine in slice order (fixed; and exact integer ops besides).
    let mut totals = CensusTotals { active: 0, busy: 0, max: 0 };
    for p in &partials[..n_slices] {
        totals.active += p.active;
        totals.busy += p.busy;
        totals.max = totals.max.max(p.max);
    }
    hist.clear();
    hist.resize(totals.max as usize + 1, 0);
    for p in &partials[..n_slices] {
        for (s, &c) in p.hist.iter().enumerate() {
            hist[s] += c;
        }
    }
    totals
}

/// Number of PEs holding work: `#{i : lens[i] > 0}`.
pub fn active_count(lens: &[u32]) -> usize {
    let mut total = 0usize;
    for chunk in lens.chunks(CHUNK) {
        let mut c = 0u32;
        for &l in chunk {
            c += (l > 0) as u32;
        }
        total += c as usize;
    }
    total
}

/// Number of PEs that can donate (the paper's busy predicate):
/// `#{i : lens[i] >= 2}`.
pub fn busy_count(lens: &[u32]) -> usize {
    let mut total = 0usize;
    for chunk in lens.chunks(CHUNK) {
        let mut c = 0u32;
        for &l in chunk {
            c += (l >= 2) as u32;
        }
        total += c as usize;
    }
    total
}

/// Largest stack length in the ensemble (the histogram's extent).
pub fn max_len(lens: &[u32]) -> u32 {
    let mut total = 0u32;
    for chunk in lens.chunks(CHUNK) {
        let mut m = 0u32;
        for &l in chunk {
            m = m.max(l);
        }
        total = total.max(m);
    }
    total
}

/// Rebuild the stack-size histogram from the dense length array:
/// `hist[s]` = number of PEs whose stack holds exactly `s > 0` nodes.
/// Idle PEs (`lens[i] == 0`) are skipped, so `hist[0] == 0` — identical
/// to the old sweep over the active list (active PEs always hold work).
/// Two passes: a vectorizable max fixes the extent, then one scatter.
pub fn build_hist(lens: &[u32], hist: &mut Vec<u32>) {
    hist.clear();
    let extent = max_len(lens) as usize;
    hist.resize(extent + 1, 0);
    for &l in lens {
        if l > 0 {
            hist[l as usize] += 1;
        }
    }
}

/// Suffix-sum the histogram into `count_ge[t]` = #active PEs with stack
/// size >= t. O(max stack size), no pointer chasing. `count_ge[0]` is the
/// active count (every counted PE holds >= 0 nodes and `hist[0] == 0`).
pub fn build_count_ge(hist: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.resize(hist.len() + 1, 0);
    let mut acc = 0u32;
    for t in (0..hist.len()).rev() {
        acc += hist[t];
        out[t] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_the_scalar_definitions() {
        // Exercise lengths around the chunk boundary so partial blocks run.
        for n in [0usize, 1, 63, 64, 65, 130, 1024] {
            let lens: Vec<u32> = (0..n).map(|i| ((i * 7 + 3) % 5) as u32).collect();
            let a = lens.iter().filter(|&&l| l > 0).count();
            let b = lens.iter().filter(|&&l| l >= 2).count();
            let m = lens.iter().copied().max().unwrap_or(0);
            assert_eq!(active_count(&lens), a, "n={n}");
            assert_eq!(busy_count(&lens), b, "n={n}");
            assert_eq!(max_len(&lens), m, "n={n}");
        }
    }

    #[test]
    fn hist_skips_idle_pes_and_matches_per_stack_recount() {
        let lens = [0u32, 3, 1, 0, 3, 7, 0, 1];
        let mut hist = Vec::new();
        build_hist(&lens, &mut hist);
        assert_eq!(hist, vec![0, 2, 0, 2, 0, 0, 0, 1]);
        let mut cg = Vec::new();
        build_count_ge(&hist, &mut cg);
        assert_eq!(cg[0] as usize, active_count(&lens), "count_ge[0] is A");
        for (t, &got) in cg.iter().enumerate() {
            let expect = lens.iter().filter(|&&l| l > 0 && l as usize >= t).count();
            assert_eq!(got as usize, expect, "t={t}");
        }
    }

    #[test]
    fn count_ge_is_the_suffix_sum() {
        let mut out = Vec::new();
        build_count_ge(&[0, 2, 0, 1], &mut out);
        assert_eq!(out, vec![3, 3, 1, 1, 0]);
        build_count_ge(&[], &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn pooled_census_matches_the_serial_sweeps_at_any_worker_count() {
        // Lengths around slice seams and CHUNK boundaries; worker counts
        // around the slice count so some participants claim nothing.
        for n in [1usize, 63, 64, 65, 1000, 8192, 8193, 20000] {
            let lens: Vec<u32> = (0..n).map(|i| ((i * 31 + 7) % 9) as u32).collect();
            let mut serial_hist = Vec::new();
            build_hist(&lens, &mut serial_hist);
            for workers in [0usize, 1, 3, 7] {
                let pool = WorkerPool::new(workers);
                let mut partials = Vec::new();
                let mut hist = Vec::new();
                let totals = pooled_census(&pool, &lens, &mut partials, &mut hist);
                assert_eq!(totals.active, active_count(&lens), "n={n} w={workers}");
                assert_eq!(totals.busy, busy_count(&lens), "n={n} w={workers}");
                assert_eq!(totals.max, max_len(&lens), "n={n} w={workers}");
                assert_eq!(hist, serial_hist, "n={n} w={workers}");
                // Scratch reuse must not perturb a second pass.
                let again = pooled_census(&pool, &lens, &mut partials, &mut hist);
                assert_eq!(again, totals, "n={n} w={workers} (reused scratch)");
                assert_eq!(hist, serial_hist, "n={n} w={workers} (reused scratch)");
            }
        }
    }

    #[test]
    fn slice_census_agrees_with_the_whole_array_reductions() {
        let lens: Vec<u32> = (0..130).map(|i| ((i * 13 + 5) % 6) as u32).collect();
        let mut part = SliceCensus::default();
        slice_census(&lens, &mut part);
        assert_eq!(part.active, active_count(&lens));
        assert_eq!(part.busy, busy_count(&lens));
        assert_eq!(part.max, max_len(&lens));
        let mut hist = Vec::new();
        build_hist(&lens, &mut hist);
        assert_eq!(part.hist, hist);
    }

    #[test]
    fn all_idle_yields_an_empty_distribution() {
        let lens = [0u32; 100];
        let mut hist = Vec::new();
        build_hist(&lens, &mut hist);
        assert_eq!(hist, vec![0]);
        let mut cg = Vec::new();
        build_count_ge(&hist, &mut cg);
        assert_eq!(cg, vec![0, 0]);
    }
}
