//! Dense census sweeps over the structure-of-arrays stack-length array.
//!
//! The engines keep every PE's stack length mirrored into one contiguous
//! `u32` array ([`uts_tree::StackArena::lens`], index = PE id). The
//! ensemble census — how many PEs are active, how many are busy
//! (splittable), and the stack-size distribution `count_ge` the
//! event-horizon bound reads — then becomes a handful of flat reductions
//! over that array instead of a pointer-chase through one heap-allocated
//! stack per PE.
//!
//! Every reduction here is written as a chunked loop over fixed-width
//! blocks with a branch-free body, the shape LLVM autovectorizes on stable
//! Rust (`std::simd` is still nightly-only; when it stabilizes these
//! bodies map 1:1 onto explicit `u32xN` lanes — see DESIGN.md §6.3). The
//! results are specified *exactly* against the per-stack recomputation the
//! engines used before (`tests/census_soa.rs` drives both on random stack
//! populations):
//!
//! * [`active_count`] = #{i : lens[i] > 0} — the paper's `A`;
//! * [`busy_count`]   = #{i : lens[i] >= 2} — PEs that can donate;
//! * [`build_hist`] + [`build_count_ge`] — the suffix-sum distribution
//!   `count_ge[t]` = #{active i : lens[i] >= t}, with `count_ge[0] = A`
//!   (idle PEs contribute `lens[i] == 0` and are skipped, exactly as the
//!   old active-list sweep never visited them; `hist[0] == 0` either way).

/// Width of the reduction blocks. 64 `u32`s = one or two cache lines per
/// accumulator block, wide enough for any SIMD unit the compiler targets.
const CHUNK: usize = 64;

/// Number of PEs holding work: `#{i : lens[i] > 0}`.
pub fn active_count(lens: &[u32]) -> usize {
    let mut total = 0usize;
    for chunk in lens.chunks(CHUNK) {
        let mut c = 0u32;
        for &l in chunk {
            c += (l > 0) as u32;
        }
        total += c as usize;
    }
    total
}

/// Number of PEs that can donate (the paper's busy predicate):
/// `#{i : lens[i] >= 2}`.
pub fn busy_count(lens: &[u32]) -> usize {
    let mut total = 0usize;
    for chunk in lens.chunks(CHUNK) {
        let mut c = 0u32;
        for &l in chunk {
            c += (l >= 2) as u32;
        }
        total += c as usize;
    }
    total
}

/// Largest stack length in the ensemble (the histogram's extent).
pub fn max_len(lens: &[u32]) -> u32 {
    let mut total = 0u32;
    for chunk in lens.chunks(CHUNK) {
        let mut m = 0u32;
        for &l in chunk {
            m = m.max(l);
        }
        total = total.max(m);
    }
    total
}

/// Rebuild the stack-size histogram from the dense length array:
/// `hist[s]` = number of PEs whose stack holds exactly `s > 0` nodes.
/// Idle PEs (`lens[i] == 0`) are skipped, so `hist[0] == 0` — identical
/// to the old sweep over the active list (active PEs always hold work).
/// Two passes: a vectorizable max fixes the extent, then one scatter.
pub fn build_hist(lens: &[u32], hist: &mut Vec<u32>) {
    hist.clear();
    let extent = max_len(lens) as usize;
    hist.resize(extent + 1, 0);
    for &l in lens {
        if l > 0 {
            hist[l as usize] += 1;
        }
    }
}

/// Suffix-sum the histogram into `count_ge[t]` = #active PEs with stack
/// size >= t. O(max stack size), no pointer chasing. `count_ge[0]` is the
/// active count (every counted PE holds >= 0 nodes and `hist[0] == 0`).
pub fn build_count_ge(hist: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.resize(hist.len() + 1, 0);
    let mut acc = 0u32;
    for t in (0..hist.len()).rev() {
        acc += hist[t];
        out[t] = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_the_scalar_definitions() {
        // Exercise lengths around the chunk boundary so partial blocks run.
        for n in [0usize, 1, 63, 64, 65, 130, 1024] {
            let lens: Vec<u32> = (0..n).map(|i| ((i * 7 + 3) % 5) as u32).collect();
            let a = lens.iter().filter(|&&l| l > 0).count();
            let b = lens.iter().filter(|&&l| l >= 2).count();
            let m = lens.iter().copied().max().unwrap_or(0);
            assert_eq!(active_count(&lens), a, "n={n}");
            assert_eq!(busy_count(&lens), b, "n={n}");
            assert_eq!(max_len(&lens), m, "n={n}");
        }
    }

    #[test]
    fn hist_skips_idle_pes_and_matches_per_stack_recount() {
        let lens = [0u32, 3, 1, 0, 3, 7, 0, 1];
        let mut hist = Vec::new();
        build_hist(&lens, &mut hist);
        assert_eq!(hist, vec![0, 2, 0, 2, 0, 0, 0, 1]);
        let mut cg = Vec::new();
        build_count_ge(&hist, &mut cg);
        assert_eq!(cg[0] as usize, active_count(&lens), "count_ge[0] is A");
        for (t, &got) in cg.iter().enumerate() {
            let expect = lens.iter().filter(|&&l| l > 0 && l as usize >= t).count();
            assert_eq!(got as usize, expect, "t={t}");
        }
    }

    #[test]
    fn count_ge_is_the_suffix_sum() {
        let mut out = Vec::new();
        build_count_ge(&[0, 2, 0, 1], &mut out);
        assert_eq!(out, vec![3, 3, 1, 1, 0]);
        build_count_ge(&[], &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn all_idle_yields_an_empty_distribution() {
        let lens = [0u32; 100];
        let mut hist = Vec::new();
        build_hist(&lens, &mut hist);
        assert_eq!(hist, vec![0]);
        let mut cg = Vec::new();
        build_count_ge(&hist, &mut cg);
        assert_eq!(cg, vec![0, 0]);
    }
}
