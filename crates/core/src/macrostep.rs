//! Event-horizon macro-cycles: batch the search phase between trigger
//! checkpoints.
//!
//! The fused engine ([`crate::engine::run_fused`]) still pays a full
//! checkpoint — census, trigger evaluation, machine accounting — after
//! *every* expansion cycle, even though for most cycles the trigger
//! provably cannot fire. All three trigger families are pure functions of
//! the active-count step trace `A(t)`, and `A(t)` can only fall between
//! balancing phases (a PE whose stack holds `s` nodes cannot go idle for
//! at least `s` cycles). [`crate::trigger::safe_horizon`] turns the stack
//! size distribution into a sound lower bound `H >= 1` on the number of
//! cycles before the trigger could possibly fire *effectively* (a fire
//! with no splittable or no idle PE performs no work transfer and leaves
//! no trace in the schedule, so it does not need a checkpoint either).
//!
//! The macro engine exploits this: before each batch it computes `H`, then
//! runs every active PE's DFS in a tight per-PE inner loop
//! ([`uts_tree::SearchStack::expand_burst`]) for `min(H, cycles-to-empty)`
//! consecutive expansions. Each PE's whole burst runs on a cache-hot
//! stack, and the lockstep census/accounting for the batch is
//! reconstructed *exactly* from the per-PE empty-times: a PE that drained
//! after `e` cycles worked cycles `1..=e` of the batch, so sorting the
//! (few) death events yields the per-cycle worked counts as a handful of
//! constant runs ([`uts_machine::SimdMachine::expansion_cycles_run`]).
//! `N_expand`, `N_lb`, `T_idle`, the active trace, goal counts, donation
//! counts and the phase log all stay bit-identical to
//! [`crate::reference::run_reference`] (enforced by the equivalence and
//! horizon-soundness suites under `tests/`).
//!
//! The horizon computation needs the stack-size distribution (`count_ge`),
//! which is built lazily: a checkpoint that cannot batch anyway (init
//! phase, `stop_on_goal`) never looks at it, and any other checkpoint
//! rebuilds it with one O(A) sweep whose cost is amortized by the cycles
//! the resulting horizon buys. When the horizon degenerates to a single
//! cycle, the step runs through a fast path identical to the fused
//! engine's pass, so a run with no batching opportunity (e.g. a machine
//! far larger than the tree, where the trigger fires after every cycle)
//! costs the same as the fused engine.

use uts_machine::SimdMachine;
use uts_tree::{StackArena, TreeProblem};

use crate::census::{build_count_ge, build_hist};
use crate::engine::{
    balancing_phase, checkpoint_trigger, machine_report, EngineConfig, LbBuffers, MacroStep,
    Outcome, ResumeState,
};
use crate::trigger::{horizon_exceeds_one, safe_horizon, HorizonCtx};

/// Run `problem` to exhaustion (or first goal) under `cfg` using
/// event-horizon macro-steps. This is the default engine; its schedule is
/// bit-identical to [`crate::reference::run_reference`].
pub fn run<P: TreeProblem>(problem: &P, cfg: &EngineConfig) -> Outcome {
    run_from(problem, cfg, None)
}

pub(crate) fn run_from<P: TreeProblem>(
    problem: &P,
    cfg: &EngineConfig,
    resume: Option<ResumeState<P::Node>>,
) -> Outcome {
    assert!(cfg.p > 0, "need at least one processor");
    let state = resume.unwrap_or_else(|| ResumeState::fresh(problem, cfg));
    let mut hook = crate::ckpt::Hook::new(cfg, state.step);
    let mut machine = state.machine;
    let mut matcher = state.matcher;
    let mut arena = StackArena::from_stacks(state.pes);
    let mut goals = state.goals;
    let mut donations = state.donations;
    let mut peak_stack_nodes = state.peak_stack_nodes;
    let mut in_init = state.in_init;
    let mut macro_steps = state.macro_steps;
    let mut recorder = state.recorder;
    let mut truncated = false;
    let mut killed = false;

    // Dense sorted active list, exactly as in the fused engine (see
    // `engine.rs` for the invariants), derived from the stacks (identically
    // for a fresh root and a restored snapshot). Busy state is read off the
    // arena's dense lens mirror; no flag array exists.
    let mut active: Vec<usize> = (0..cfg.p).filter(|&i| arena.len_of(i) > 0).collect();

    // Stack-size histogram over the *active* PEs (`size_hist[s]` = number
    // of active PEs whose stack holds `s` nodes), rebuilt on demand at
    // each checkpoint that computes a horizon.
    let mut size_hist: Vec<u32> = Vec::new();
    let mut count_ge: Vec<u32> = Vec::new();

    let mut lb = LbBuffers::default();
    // Burst lengths of PEs that drained mid-batch (usually empty or tiny).
    let mut death_cycles: Vec<u64> = Vec::new();

    loop {
        // ---- event horizon ----
        let h = compute_horizon(
            cfg,
            &machine,
            arena.lens(),
            active.len(),
            in_init,
            &mut size_hist,
            &mut count_ge,
        );

        let start_cycle = machine.metrics().n_expand;
        // ---- search phase: the shared burst helper ----
        // `h == 1` runs the fused engine's single-cycle pass; `h > 1` runs
        // one tight cache-hot DFS burst per active PE straight over the
        // slab/lens windows, recording each drained PE's burst length.
        let stats = crate::engine::expansion_burst(
            problem,
            &mut arena,
            &mut active,
            h,
            &mut goals,
            &mut peak_stack_nodes,
            &mut death_cycles,
        );
        let mut busy_count = stats.busy;
        let ran;
        if h == 1 {
            machine.expansion_cycle(stats.started);
            ran = 1;
        } else {
            // ---- reconstruct the lockstep schedule from the deaths ----
            // A PE that drained after `e` expansions worked cycles `1..=e`
            // of the batch; survivors worked all of them. So worked(j) is a
            // step function dropping at each distinct death time, and the
            // batch ends at `h` if anyone survived, else at the last death.
            death_cycles.sort_unstable();
            ran = if active.is_empty() { *death_cycles.last().expect("had active PEs") } else { h };
            machine.expansion_cycles_with_deaths(stats.started, ran, &death_cycles);
        }
        if cfg.record_horizons {
            macro_steps.push(MacroStep { start_cycle, horizon: h, ran });
        }

        // ---- checkpoint (identical order to the reference loop) ----
        if cfg.stop_on_goal && goals > 0 {
            break;
        }
        if cfg.max_cycles.is_some_and(|m| machine.metrics().n_expand >= m) {
            truncated = true;
            break;
        }
        if active.is_empty() {
            break; // space exhausted
        }

        // ---- trigger + load-balancing phase (shared checkpoint tail) ----
        let idle = cfg.p - active.len();
        let fired =
            checkpoint_trigger(cfg, &machine, &mut in_init, busy_count, idle, h, &mut recorder);
        if fired {
            balancing_phase(
                cfg,
                &mut machine,
                &mut matcher,
                &mut arena,
                &mut active,
                &mut busy_count,
                &mut donations,
                &mut lb,
                idle,
                &mut peak_stack_nodes,
                &mut recorder,
            );
        }

        // ---- macro-step boundary (checkpoint + fault injection) ----
        if let Some(hk) = hook.as_mut() {
            let dies = hk.boundary(fired, |step, fp| {
                crate::ckpt::capture(
                    step,
                    fp,
                    in_init,
                    goals,
                    &donations,
                    peak_stack_nodes,
                    &matcher,
                    &machine,
                    recorder.as_ref(),
                    &macro_steps,
                    uts_ckpt::StackSource::Arena(&arena),
                )
            });
            if dies {
                killed = true;
                break;
            }
        }
    }

    let report = machine_report(machine);
    let ledger = recorder.map(|r| r.finish(&donations));
    Outcome { report, goals, truncated, killed, donations, peak_stack_nodes, macro_steps, ledger }
}

/// Compute the next event horizon for a macro-step engine: a sound lower
/// bound on the cycles before the trigger could fire effectively, clamped
/// to the `max_cycles` budget. `stop_on_goal` must observe goals
/// cycle-by-cycle, and the init phase balances after every cycle by
/// construction; both degrade gracefully to single-cycle steps.
/// `size_hist`/`count_ge` are caller-owned scratch, rebuilt only when a
/// multi-cycle horizon is actually reachable. `lens` is the dense per-PE
/// stack-length array (`lens[i]` = PE `i`'s stack size, 0 when idle), the
/// structure-of-arrays mirror every engine maintains; the distribution is
/// rebuilt from it with the chunked census sweeps (`crate::census`), which
/// skip idle PEs and so agree exactly with the old active-list sweep.
pub(crate) fn compute_horizon(
    cfg: &EngineConfig,
    machine: &SimdMachine,
    lens: &[u32],
    active_len: usize,
    in_init: bool,
    size_hist: &mut Vec<u32>,
    count_ge: &mut Vec<u32>,
) -> u64 {
    compute_horizon_pooled(cfg, machine, lens, active_len, in_init, size_hist, count_ge, None)
}

/// [`compute_horizon`] with an optional worker pool for the census: when a
/// pool is offered and the ensemble is large enough to pay for a dispatch
/// ([`crate::census::POOLED_CENSUS_MIN_LENS`]), the stack-size histogram
/// is built by pool-parallel slice reductions combined in fixed slice
/// order instead of one serial sweep — so the horizon computation stops
/// being a serial tail between the parallel engine's bursts. The result is
/// identical either way (exact integer reductions, fixed combine order;
/// see `census::pooled_census`), so the schedule cannot observe the
/// choice. `census_slices` is the pooled path's per-slice scratch,
/// persistent across macro-steps.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_horizon_pooled(
    cfg: &EngineConfig,
    machine: &SimdMachine,
    lens: &[u32],
    active_len: usize,
    in_init: bool,
    size_hist: &mut Vec<u32>,
    count_ge: &mut Vec<u32>,
    census_pool: Option<(&crate::pool::WorkerPool, &mut Vec<crate::census::SliceCensus>)>,
) -> u64 {
    let mut h = if in_init
        || cfg.stop_on_goal
        || !horizon_exceeds_one(
            cfg.scheme.trigger,
            cfg.p,
            active_len,
            machine.phase(),
            cfg.cost.u_calc,
            machine.estimated_lb_cost(),
        ) {
        1
    } else {
        match census_pool {
            Some((pool, census_slices))
                if lens.len() >= crate::census::POOLED_CENSUS_MIN_LENS && pool.workers() > 0 =>
            {
                crate::census::pooled_census(pool, lens, census_slices, size_hist);
            }
            _ => build_hist(lens, size_hist),
        }
        build_count_ge(size_hist, count_ge);
        let hctx = HorizonCtx {
            p: cfg.p,
            active: active_len,
            count_ge,
            phase: *machine.phase(),
            u_calc: cfg.cost.u_calc,
            l_estimate: machine.estimated_lb_cost(),
        };
        safe_horizon(cfg.scheme.trigger, &hctx)
    };
    if let Some(m) = cfg.max_cycles {
        // Stop exactly at the budget (the reference overshoots a
        // zero/exceeded budget by the one cycle it always runs; so do we,
        // via the `.max(1)`).
        h = h.min(m.saturating_sub(machine.metrics().n_expand)).max(1);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use uts_machine::CostModel;
    use uts_synth::GeometricTree;
    use uts_tree::serial_dfs;

    #[test]
    fn macro_steps_partition_the_run() {
        let tree = GeometricTree { seed: 9, b_max: 8, depth_limit: 6 };
        for scheme in [Scheme::gp_dk(), Scheme::gp_static(0.75), Scheme::fegs()] {
            let cfg = EngineConfig::new(64, scheme, CostModel::cm2()).with_horizon_log();
            let out = run(&tree, &cfg);
            assert!(!out.macro_steps.is_empty());
            let mut cursor = 0u64;
            for step in &out.macro_steps {
                assert_eq!(step.start_cycle, cursor, "{}", scheme.name());
                assert!(step.ran >= 1 && step.ran <= step.horizon);
                cursor += step.ran;
            }
            assert_eq!(cursor, out.report.n_expand, "{}", scheme.name());
        }
    }

    #[test]
    fn horizon_batching_actually_batches() {
        // Sanity that the tentpole does something: on a serial run (P=1)
        // the horizon is the stack size, so macro-steps must be far fewer
        // than cycles.
        let tree = GeometricTree { seed: 2, b_max: 8, depth_limit: 6 };
        let w = serial_dfs(&tree).expanded;
        let cfg = EngineConfig::new(1, Scheme::gp_dk(), CostModel::cm2()).with_horizon_log();
        let out = run(&tree, &cfg);
        assert_eq!(out.report.n_expand, w);
        assert!(
            (out.macro_steps.len() as u64) * 2 < w,
            "{} steps for {} cycles",
            out.macro_steps.len(),
            w
        );
    }
}
