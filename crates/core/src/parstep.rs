//! Host-parallel event-horizon macro-steps.
//!
//! The macro engine ([`crate::macrostep::run`]) already batches the search
//! phase into per-PE [`uts_tree::PeSlab::expand_burst`] loops between
//! trigger checkpoints. Within one macro-step those bursts are independent
//! by construction — each touches only its own PE's slab — which makes
//! the batch embarrassingly parallel on the host. `run_par` exploits this:
//! it cuts the dense sorted active-PE list into contiguous **work chunks**
//! (about four per worker, so stragglers on skewed trees are absorbed by
//! idle workers instead of stalling the join), publishes the chunk jobs in
//! a fixed order, and lets worker threads claim them off an atomic cursor.
//! Each chunk's bursts run into chunk-local scratch (kept-PE list, death
//! cycles, goal/peak totals), and the main thread merges the chunks back
//! **in chunk-index order** after the join.
//!
//! **Determinism argument** (DESIGN.md §6.3). Only the *assignment* of
//! chunks to threads is dynamic; everything that reaches engine state is
//! fixed before any worker starts:
//!
//! * *chunk contents* — chunk `c` is a fixed contiguous slice of the
//!   sorted active list, computed serially from `(started, workers)`;
//!   which thread runs it cannot change what it does;
//! * *kept active list* — chunks are contiguous slices of a sorted list,
//!   so concatenating per-chunk kept lists in chunk order *is* PE order;
//! * *death cycles* — sorted before the schedule reconstruction, so chunk
//!   arrival order is irrelevant
//!   ([`uts_machine::SimdMachine::expansion_cycles_with_deaths`] consumes
//!   the sorted multiset);
//! * *goal counts* — exact `u64` sums, commutative;
//! * *peak stack depth* — a max, commutative;
//! * *busy counts* — exact sums.
//!
//! Everything sequenced — horizon computation, schedule reconstruction,
//! the trigger checkpoint, and the whole balancing phase — runs on the
//! main thread between batches, exactly as in the serial macro engine.
//! The one atomic (the claim cursor) orders nothing but job pickup; no
//! worker observes another worker's state, and no floating-point
//! reassociation exists, so the schedule cannot depend on thread count or
//! interleaving even in principle.
//!
//! Workers come from a **persistent pool** ([`crate::pool::WorkerPool`]):
//! `threads - 1` threads spawned once per run, parked on a condvar between
//! bursts, and woken per macro-step through an epoch-stamped dispatch cell
//! (the vendored `rayon` facade is a sequential shim, so the pool is the
//! real parallelism primitive here). The pool replaced the old
//! per-macro-step [`std::thread::scope`] fan-out, whose spawn/join cycle
//! ate bursts worth only a couple hundred microseconds — see the
//! `pool_dispatch` criterion group for the measured gap. Scratch buffers
//! persist across steps so a warmed-up step allocates little; with
//! dispatch cheap, the census feeding the next horizon runs on the pool
//! too ([`crate::census::pooled_census`]); and small batches still skip
//! the fan-out entirely — `run_par` at one worker is the macro engine plus
//! a branch. The pool joins deterministically when the run returns, on
//! goal-stop early exit, and on checkpoint-kill alike (its `Drop` parks
//! then joins every worker; `tests/pool_lifecycle.rs` counts OS threads).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use uts_tree::{Burst, PeSlab, StackArena, TreeProblem};

use crate::census::SliceCensus;
use crate::engine::{
    balancing_phase, checkpoint_trigger, machine_report, EngineConfig, LbBuffers, MacroStep,
    Outcome, ResumeState,
};
use crate::macrostep::compute_horizon_pooled;
use crate::pool::WorkerPool;

/// Default for [`EngineConfig::fan_out_min_work`]: the minimum
/// `started_PEs × horizon` product worth waking the pool for when the
/// worker count was auto-detected. Below this the batch runs inline on
/// the main thread; the schedule is identical either way, so the
/// threshold is purely a latency knob. [`EngineConfig::threads`] is
/// likewise *only* a worker count: setting it does not force sharding.
/// Suites that need the sharded path on trees far too small to cross
/// this bar force it with [`EngineConfig::with_fan_out_min_work`]`(0)`.
///
/// The constant is bench-derived for the *pooled* cost model: a pool
/// dispatch (epoch bump + condvar wake + completion join) measures in the
/// low single-digit microseconds on the `pool_dispatch` criterion group —
/// versus tens to hundreds for the scoped spawn/join it replaced, which is
/// why the old threshold sat at 4096. At ~15–60 ns per node expansion,
/// 256 PE-cycles of burst work is the break-even neighbourhood; batches
/// smaller than that are dominated by the wake even on a warm pool. The
/// old 4096 bar silently serialized the small-but-frequent bursts of
/// shallow trees (the d7 benchmark workloads fire the trigger every few
/// cycles, so `started × H` rarely cleared it) — exactly the steps a
/// persistent pool makes worth fanning out.
pub const DEFAULT_FAN_OUT_MIN_WORK: u64 = 256;

/// Chunks published per worker. More than one chunk per worker lets the
/// claim cursor rebalance skew (one PE's burst can dwarf another's on an
/// irregular tree); four keeps the per-chunk overhead negligible while
/// bounding any worker's idle tail at roughly a quarter of a chunk.
const CHUNKS_PER_WORKER: usize = 4;

/// Resolve the worker count: explicit config knob, else the conventional
/// `RAYON_NUM_THREADS` override, else one worker per available core.
pub(crate) fn resolve_threads(cfg: &EngineConfig) -> usize {
    cfg.threads
        .or_else(|| {
            std::env::var("RAYON_NUM_THREADS").ok().and_then(|s| s.parse().ok()).filter(|&n| n > 0)
        })
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        .max(1)
}

/// Chunk-local results of one chunk's burst pass, merged on the main
/// thread afterwards. Buffers persist across macro-steps (allocation
/// steadiness, DESIGN.md §6.1) — `reset` only truncates.
#[derive(Default)]
struct ShardScratch {
    /// PEs of this chunk still holding work, in ascending PE order.
    kept: Vec<usize>,
    /// Burst lengths of this chunk's PEs that drained mid-batch.
    deaths: Vec<u64>,
    /// Chunk PEs left splittable (`len >= 2`).
    busy: usize,
    /// Expansion/goal/peak totals over the chunk's bursts.
    totals: Burst,
}

impl ShardScratch {
    fn reset(&mut self) {
        self.kept.clear();
        self.deaths.clear();
        self.busy = 0;
        self.totals = Burst::default();
    }
}

/// One published chunk job: the active-list slice, its PE-index re-base,
/// and the disjoint slab/lens windows covering exactly that index range.
type ChunkJob<'a, N> =
    (&'a [usize], usize, &'a mut [PeSlab<N>], &'a mut [u32], &'a mut ShardScratch);

/// Run the bursts of one chunk of the active list. `slabs` and `lens` are
/// the windows of the arena arrays covering exactly this chunk's PE index
/// range, re-based at `base` (so global PE `i` lives at `slabs[i - base]`).
fn run_chunk<P: TreeProblem>(
    problem: &P,
    budget: u64,
    chunk: &[usize],
    base: usize,
    slabs: &mut [PeSlab<P::Node>],
    lens: &mut [u32],
    scr: &mut ShardScratch,
) {
    scr.reset();
    for &i in chunk {
        let slab = &mut slabs[i - base];
        let burst = slab.expand_burst(problem, budget);
        let s1 = slab.len();
        lens[i - base] = s1 as u32;
        if s1 == 0 {
            scr.deaths.push(burst.expanded);
        } else {
            scr.busy += (s1 >= 2) as usize;
            scr.kept.push(i);
        }
        scr.totals.absorb(burst);
    }
}

/// Run `problem` to exhaustion (or first goal) under `cfg`, fanning each
/// macro-step's bursts out across host worker threads via dynamically
/// claimed work chunks. The schedule — every counter, trace, donation
/// vector and goal count — is bit-identical to [`crate::macrostep::run`]
/// at any thread count (see the module docs for the argument, and
/// `tests/engine_differential.rs` for the enforcement).
pub fn run_par<P: TreeProblem>(problem: &P, cfg: &EngineConfig) -> Outcome {
    run_par_from(problem, cfg, None)
}

pub(crate) fn run_par_from<P: TreeProblem>(
    problem: &P,
    cfg: &EngineConfig,
    resume: Option<ResumeState<P::Node>>,
) -> Outcome {
    assert!(cfg.p > 0, "need at least one processor");
    let threads = resolve_threads(cfg);
    // The persistent worker pool: spawned once here, woken per macro-step,
    // parked in between, joined when this function returns — on normal
    // exhaustion, goal-stop, truncation and checkpoint-kill alike (drop
    // order runs the pool's join before the Outcome leaves). One worker
    // needs no pool at all: every step runs inline.
    let pool = (threads > 1).then(|| WorkerPool::new(threads - 1));
    let state = resume.unwrap_or_else(|| ResumeState::fresh(problem, cfg));
    let mut hook = crate::ckpt::Hook::new(cfg, state.step);
    let mut machine = state.machine;
    let mut matcher = state.matcher;
    let mut arena = StackArena::from_stacks(state.pes);
    let mut goals = state.goals;
    let mut donations = state.donations;
    let mut peak_stack_nodes = state.peak_stack_nodes;
    let mut in_init = state.in_init;
    let mut macro_steps = state.macro_steps;
    // The ledger is recorded entirely on the main thread — the trigger
    // checkpoint and the balancing phase are serial sections here exactly
    // as in the macro engine — so no per-worker ledger state exists and no
    // merge is needed (DESIGN.md §7). The same holds for snapshots: the
    // boundary hook runs after the burst phase joined its workers.
    let mut recorder = state.recorder;
    let mut truncated = false;
    let mut killed = false;

    // Dense sorted active list, exactly as in the fused engine (see
    // `engine.rs` for the invariants), derived from the stacks. Busy state
    // is read off the arena's dense lens mirror; no flag array exists.
    let mut active: Vec<usize> = (0..cfg.p).filter(|&i| arena.len_of(i) > 0).collect();

    let mut size_hist: Vec<u32> = Vec::new();
    let mut count_ge: Vec<u32> = Vec::new();

    let mut lb = LbBuffers::default();
    // Per-chunk scratch, the pooled census's per-slice scratch, and the
    // rebuilt active list, all persistent.
    let mut shards: Vec<ShardScratch> = Vec::new();
    let mut census_slices: Vec<SliceCensus> = Vec::new();
    let mut next_active: Vec<usize> = Vec::new();
    let mut death_cycles: Vec<u64> = Vec::new();

    loop {
        // ---- event horizon (identical result to the macro engine; the
        // ---- census histogram runs on the pool when the ensemble is
        // ---- large enough to pay for a dispatch) ----
        let h = compute_horizon_pooled(
            cfg,
            &machine,
            arena.lens(),
            active.len(),
            in_init,
            &mut size_hist,
            &mut count_ge,
            pool.as_ref().map(|p| (p, &mut census_slices)),
        );

        let started = active.len();
        let start_cycle = machine.metrics().n_expand;

        // ---- burst phase: wake the pool, or run inline when small ----
        let fan_out = threads > 1 && started >= 2 && started as u64 * h >= cfg.fan_out_min_work;
        let mut busy_count;
        let ran;
        if !fan_out && h == 1 {
            // Single-cycle step on the main thread: take the fused fast
            // path, exactly as the serial macro engine does, so one-worker
            // runs cost the macro engine plus a branch.
            let stats = crate::engine::fused_expansion_cycle(
                problem,
                &mut arena,
                &mut active,
                &mut goals,
                &mut peak_stack_nodes,
            );
            busy_count = stats.busy;
            machine.expansion_cycle(stats.started);
            ran = 1;
        } else if !fan_out {
            // One-worker multi-cycle step: run the macro engine's burst arm
            // verbatim (in-place compaction of `active`, no chunk scratch),
            // so a non-fanned-out `run_par` is the macro engine plus a
            // branch — parity, not parity-within-noise.
            death_cycles.clear();
            let mut kept = 0usize;
            busy_count = 0;
            let (slabs, lens) = arena.parts_mut();
            for scan in 0..started {
                let i = active[scan];
                let slab = &mut slabs[i];
                let burst = slab.expand_burst(problem, h);
                goals += burst.goals;
                peak_stack_nodes = peak_stack_nodes.max(burst.peak);
                let s1 = slab.len();
                lens[i] = s1 as u32;
                if s1 == 0 {
                    death_cycles.push(burst.expanded);
                } else {
                    busy_count += (s1 >= 2) as usize;
                    active[kept] = i;
                    kept += 1;
                }
            }
            active.truncate(kept);
            death_cycles.sort_unstable();
            ran = if kept > 0 { h } else { *death_cycles.last().expect("had active PEs") };
            machine.expansion_cycles_with_deaths(started, ran, &death_cycles);
        } else {
            // `fan_out` implies `threads > 1 && started >= 2`, so at least
            // two chunks and two workers always form here.
            let workers = threads.min(started);
            let nc = (workers * CHUNKS_PER_WORKER).min(started);
            if shards.len() < nc {
                shards.resize_with(nc, ShardScratch::default);
            }
            // Chunk `c` takes a contiguous slice of the sorted active list;
            // its PEs occupy the disjoint index range
            // `active[chunk_start] ..= active[chunk_end - 1]`, so slicing
            // the arena's slab/lens arrays at the next chunk's first PE
            // hands every job a disjoint `&mut` window — the windows are
            // disjoint no matter which worker claims which job.
            let base_size = started / nc;
            let extra = started % nc;
            let (slabs_all, lens_all) = arena.parts_mut();
            let mut jobs: Vec<Mutex<Option<ChunkJob<'_, P::Node>>>> = Vec::with_capacity(nc);
            let mut slabs_rest: &mut [PeSlab<P::Node>] = slabs_all;
            let mut lens_rest: &mut [u32] = lens_all;
            let mut base = 0usize;
            let mut chunk_start = 0usize;
            let mut shard_iter = shards[..nc].iter_mut();
            for c in 0..nc {
                let len = base_size + usize::from(c < extra);
                let chunk = &active[chunk_start..chunk_start + len];
                chunk_start += len;
                let cut = if chunk_start < started {
                    active[chunk_start] - base
                } else {
                    slabs_rest.len()
                };
                let (slabs_here, slabs_next) = std::mem::take(&mut slabs_rest).split_at_mut(cut);
                let (lens_here, lens_next) = std::mem::take(&mut lens_rest).split_at_mut(cut);
                let scr = shard_iter.next().expect("chunk scratch");
                jobs.push(Mutex::new(Some((chunk, base, slabs_here, lens_here, scr))));
                base += cut;
                slabs_rest = slabs_next;
                lens_rest = lens_next;
            }

            // ---- claim loop: participants pull chunk jobs off an atomic
            // ---- cursor. One pool dispatch wakes the parked workers for
            // ---- this epoch; the main thread claims too instead of
            // ---- idling, and the dispatch returns once every participant
            // ---- ran out of jobs (so all borrows below are settled).
            let cursor = AtomicUsize::new(0);
            {
                let jobs = &jobs;
                let cursor = &cursor;
                pool.as_ref().expect("fan_out implies threads > 1").dispatch(&move || loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= jobs.len() {
                        break;
                    }
                    let (chunk, base, slabs_w, lens_w, scr) =
                        jobs[k].lock().expect("job lock").take().expect("job claimed once");
                    run_chunk(problem, h, chunk, base, slabs_w, lens_w, scr);
                });
            }

            // ---- merge chunks in chunk order == PE order (main thread) ----
            next_active.clear();
            death_cycles.clear();
            busy_count = 0;
            for scr in &shards[..nc] {
                next_active.extend_from_slice(&scr.kept);
                death_cycles.extend_from_slice(&scr.deaths);
                busy_count += scr.busy;
                goals += scr.totals.goals;
                peak_stack_nodes = peak_stack_nodes.max(scr.totals.peak);
            }
            std::mem::swap(&mut active, &mut next_active);

            // ---- reconstruct the lockstep schedule from the deaths ----
            death_cycles.sort_unstable();
            ran =
                if !active.is_empty() { h } else { *death_cycles.last().expect("had active PEs") };
            machine.expansion_cycles_with_deaths(started, ran, &death_cycles);
        }
        if cfg.record_horizons {
            macro_steps.push(MacroStep { start_cycle, horizon: h, ran });
        }

        // ---- checkpoint (identical order to the reference loop) ----
        if cfg.stop_on_goal && goals > 0 {
            break;
        }
        if cfg.max_cycles.is_some_and(|m| machine.metrics().n_expand >= m) {
            truncated = true;
            break;
        }
        if active.is_empty() {
            break; // space exhausted
        }

        // ---- trigger + load-balancing phase (shared checkpoint tail) ----
        let idle = cfg.p - active.len();
        let fired =
            checkpoint_trigger(cfg, &machine, &mut in_init, busy_count, idle, h, &mut recorder);
        if fired {
            balancing_phase(
                cfg,
                &mut machine,
                &mut matcher,
                &mut arena,
                &mut active,
                &mut busy_count,
                &mut donations,
                &mut lb,
                idle,
                &mut peak_stack_nodes,
                &mut recorder,
            );
        }

        // ---- macro-step boundary (checkpoint + fault injection) ----
        // The pool is quiescent here by construction: every dispatch above
        // joined before this point, so a snapshot — and an injected kill —
        // always sees complete, settled state (no burst in flight, every
        // worker parked). Asserted because the kill→resume differential
        // depends on it.
        debug_assert!(
            pool.as_ref().is_none_or(WorkerPool::is_quiescent),
            "macro-step boundary reached with the pool mid-dispatch"
        );
        if let Some(hk) = hook.as_mut() {
            let dies = hk.boundary(fired, |step, fp| {
                crate::ckpt::capture(
                    step,
                    fp,
                    in_init,
                    goals,
                    &donations,
                    peak_stack_nodes,
                    &matcher,
                    &machine,
                    recorder.as_ref(),
                    &macro_steps,
                    uts_ckpt::StackSource::Arena(&arena),
                )
            });
            if dies {
                killed = true;
                break;
            }
        }
    }

    let report = machine_report(machine);
    let ledger = recorder.map(|r| r.finish(&donations));
    Outcome { report, goals, truncated, killed, donations, peak_stack_nodes, macro_steps, ledger }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::macrostep::run;
    use crate::scheme::Scheme;
    use uts_machine::CostModel;
    use uts_synth::GeometricTree;

    #[test]
    fn resolve_threads_prefers_the_config_knob() {
        let cfg = EngineConfig::new(4, Scheme::gp_dk(), CostModel::cm2()).with_threads(3);
        assert_eq!(resolve_threads(&cfg), 3);
    }

    #[test]
    fn par_matches_macro_at_several_thread_counts() {
        // min_work 0 forces the sharded path even on this small tree.
        let tree = GeometricTree { seed: 21, b_max: 8, depth_limit: 6 };
        let base = EngineConfig::new(64, Scheme::gp_dk(), CostModel::cm2())
            .with_trace()
            .with_fan_out_min_work(0);
        let serial = run(&tree, &base);
        for threads in [1usize, 2, 8] {
            let par = run_par(&tree, &base.clone().with_threads(threads));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn fan_out_threshold_is_a_latency_knob_not_a_schedule_input() {
        // Any threshold — always-fan-out (0), the default, and
        // effectively-never (u64::MAX) — must yield the identical Outcome;
        // threads are auto-detected here so the heuristic actually runs.
        let tree = GeometricTree { seed: 33, b_max: 8, depth_limit: 6 };
        let base = EngineConfig::new(128, Scheme::gp_dk(), CostModel::cm2()).with_trace();
        let serial = run(&tree, &base);
        for min_work in [0u64, DEFAULT_FAN_OUT_MIN_WORK, u64::MAX] {
            let par = run_par(&tree, &base.clone().with_fan_out_min_work(min_work));
            assert_eq!(par, serial, "fan_out_min_work={min_work}");
        }
    }

    #[test]
    fn par_single_worker_takes_the_inline_path_with_identical_steps() {
        let tree = GeometricTree { seed: 5, b_max: 8, depth_limit: 6 };
        let cfg = EngineConfig::new(32, Scheme::gp_static(0.75), CostModel::cm2())
            .with_horizon_log()
            .with_threads(1);
        let par = run_par(&tree, &cfg);
        let serial = run(&tree, &cfg);
        assert_eq!(par.macro_steps, serial.macro_steps);
        assert_eq!(par, serial);
    }
}
