//! The nearest-neighbor scheme of Frye & Myczkowski (paper Sec. 8):
//! "after each node expansion cycle the processors that have work check to
//! see if their neighbors are idle. If this is the case then they transfer
//! work to them."
//!
//! We realize it on a ring (1-D torus): after every expansion cycle, each
//! busy processor whose right neighbor is idle donates one split. The
//! transfer is neighbor-to-neighbor, so the machine is charged `U_comm`
//! (not the full routed `t_lb`) per balancing step. The paper notes this
//! family's isoefficiency is sensitive to the splitting quality —
//! observable here via [`NnConfig::split`].
//!
//! **Checkpointing:** this engine does *not* participate in the
//! [`crate::ckpt`] subsystem. It is a deliberately separate baseline with
//! its own [`NnConfig`]/[`NnOutcome`] types — it balances after *every*
//! expansion cycle, so it has no macro-step boundaries for a
//! [`uts_ckpt::CheckpointPolicy`] to select, and it sits outside the
//! four-engine bit-identical contract that makes snapshots
//! engine-invariant. A run here is also short and cheap to redo; fault
//! tolerance buys nothing. Its runs are fully deterministic (see the
//! repeatability test below), so re-running *is* resuming.

use uts_machine::{CostModel, Report, SimdMachine};
use uts_tree::{SearchStack, SplitPolicy, TreeProblem};

/// Configuration for the nearest-neighbor run.
#[derive(Debug, Clone)]
pub struct NnConfig {
    /// Ensemble size (ring length).
    pub p: usize,
    /// Machine timing model (uses `u_calc` and `u_comm`).
    pub cost: CostModel,
    /// Split policy used for neighbor donations.
    pub split: SplitPolicy,
    /// Safety valve for tests.
    pub max_cycles: Option<u64>,
}

impl NnConfig {
    /// Defaults: bottom split, no cycle cap.
    pub fn new(p: usize, cost: CostModel) -> Self {
        Self { p, cost, split: SplitPolicy::Bottom, max_cycles: None }
    }
}

/// Outcome of a nearest-neighbor run.
#[derive(Debug, Clone)]
pub struct NnOutcome {
    /// Machine accounting. `n_lb` counts the cycles in which at least one
    /// neighbor transfer happened.
    pub report: Report,
    /// Goal nodes found.
    pub goals: u64,
    /// True if `max_cycles` fired.
    pub truncated: bool,
}

/// Run `problem` under ring nearest-neighbor balancing.
pub fn run_nearest_neighbor<P: TreeProblem>(problem: &P, cfg: &NnConfig) -> NnOutcome {
    assert!(cfg.p > 0);
    // Neighbor steps cost U_comm instead of the routed t_lb: express that
    // by overriding the cost model's balancing cost with u_comm.
    let mut cost = cfg.cost;
    cost.lb_setup = 0;
    cost.lb_transfer = cfg.cost.u_comm;
    cost.topology = uts_machine::Topology::Cm2; // constant per-step cost
    let mut machine = SimdMachine::new(cfg.p, cost);

    let mut stacks: Vec<SearchStack<P::Node>> = (0..cfg.p).map(|_| SearchStack::new()).collect();
    stacks[0] = SearchStack::from_root(problem.root());
    let mut goals = 0u64;
    let mut truncated = false;
    let mut children: Vec<P::Node> = Vec::new();

    loop {
        // Expansion cycle.
        let mut worked = 0usize;
        for stack in stacks.iter_mut() {
            if let Some(node) = stack.pop_next() {
                worked += 1;
                if problem.is_goal(&node) {
                    goals += 1;
                }
                children.clear();
                problem.expand(&node, &mut children);
                stack.push_frame(std::mem::take(&mut children));
            }
        }
        machine.expansion_cycle(worked);
        if stacks.iter().all(|s| s.is_empty()) {
            break;
        }
        if cfg.max_cycles.is_some_and(|m| machine.metrics().n_expand >= m) {
            truncated = true;
            break;
        }

        // Neighbor balancing step: busy PE i feeds idle PE (i+1) mod P.
        // Decisions are taken against the pre-step state (lockstep SIMD),
        // so a PE fed this step cannot donate in the same step.
        let idle_before: Vec<bool> = stacks.iter().map(|s| s.is_empty()).collect();
        let busy_before: Vec<bool> = stacks.iter().map(|s| s.can_split()).collect();
        let mut transfers = 0u64;
        for i in 0..cfg.p {
            let right = (i + 1) % cfg.p;
            if right != i && busy_before[i] && idle_before[right] {
                if let Some(chunk) = stacks[i].split(cfg.split) {
                    stacks[right] = chunk;
                    transfers += 1;
                }
            }
        }
        if transfers > 0 {
            machine.lb_phase(1, transfers);
        }
    }

    let w = machine.metrics().nodes_expanded;
    NnOutcome { report: machine.finish(w), goals, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uts_synth::GeometricTree;
    use uts_tree::serial_dfs;

    fn geo(seed: u64) -> GeometricTree {
        GeometricTree { seed, b_max: 8, depth_limit: 6 }
    }

    #[test]
    fn nn_is_anomaly_free() {
        let tree = geo(2);
        let w = serial_dfs(&tree).expanded;
        for p in [1usize, 2, 8, 64] {
            let out = run_nearest_neighbor(&tree, &NnConfig::new(p, CostModel::cm2()));
            assert_eq!(out.report.nodes_expanded, w, "P={p}");
            assert!(!out.truncated);
        }
    }

    #[test]
    fn nn_finds_serial_goals() {
        let tree = geo(3);
        let serial = serial_dfs(&tree);
        let out = run_nearest_neighbor(&tree, &NnConfig::new(16, CostModel::cm2()));
        assert_eq!(out.goals, serial.goals);
    }

    #[test]
    fn nn_single_processor_never_balances() {
        let tree = geo(4);
        let out = run_nearest_neighbor(&tree, &NnConfig::new(1, CostModel::cm2()));
        assert_eq!(out.report.n_lb, 0);
    }

    #[test]
    fn nn_work_diffuses_slower_than_global_matching() {
        // Ring diffusion reaches PEs one hop per step, so the idle time on
        // a wide machine should be at least that of a global scheme.
        let tree = GeometricTree { seed: 6, b_max: 8, depth_limit: 7 };
        let nn = run_nearest_neighbor(&tree, &NnConfig::new(128, CostModel::cm2()));
        let global = crate::macrostep::run(
            &tree,
            &crate::engine::EngineConfig::new(
                128,
                crate::scheme::Scheme::gp_static(0.9),
                CostModel::cm2(),
            ),
        );
        assert!(
            nn.report.t_idle >= global.report.t_idle,
            "nn {} vs global {}",
            nn.report.t_idle,
            global.report.t_idle
        );
    }

    #[test]
    fn nn_accounting_identity() {
        let tree = geo(5);
        let out = run_nearest_neighbor(&tree, &NnConfig::new(32, CostModel::cm2()));
        assert!(out.report.accounting_identity_holds());
    }

    #[test]
    fn nn_is_deterministic_run_to_run() {
        // No checkpoint/resume here (see the module docs): the substitute
        // guarantee is that re-running reproduces the run exactly.
        let tree = geo(7);
        let cfg = NnConfig::new(32, CostModel::cm2());
        let a = run_nearest_neighbor(&tree, &cfg);
        let b = run_nearest_neighbor(&tree, &cfg);
        assert_eq!(a.report, b.report);
        assert_eq!(a.goals, b.goals);
        assert_eq!(a.truncated, b.truncated);
    }

    #[test]
    fn nn_max_cycles_truncates_and_reports_it() {
        let tree = geo(2);
        let mut cfg = NnConfig::new(4, CostModel::cm2());
        cfg.max_cycles = Some(3);
        let out = run_nearest_neighbor(&tree, &cfg);
        assert!(out.truncated);
        assert_eq!(out.report.n_expand, 3);
        let full = run_nearest_neighbor(&tree, &NnConfig::new(4, CostModel::cm2()));
        assert!(out.report.nodes_expanded < full.report.nodes_expanded);
    }

    #[test]
    fn nn_split_policy_changes_diffusion_not_work() {
        // Splitting quality shifts *when* work spreads (the paper's
        // isoefficiency sensitivity), never *how much* work exists.
        let tree = geo(8);
        let w = serial_dfs(&tree).expanded;
        for split in [SplitPolicy::Bottom, SplitPolicy::Half, SplitPolicy::Top] {
            let mut cfg = NnConfig::new(16, CostModel::cm2());
            cfg.split = split;
            let out = run_nearest_neighbor(&tree, &cfg);
            assert_eq!(out.report.nodes_expanded, w, "{split:?}");
        }
    }

    #[test]
    fn nn_transfers_only_feed_idle_right_neighbors() {
        // On a 2-ring the donor can only ever feed PE 1; the very first
        // balancing step must move work there, after which some cycles
        // expand two nodes — so node count exceeds cycle count.
        let tree = geo(9);
        let out = run_nearest_neighbor(&tree, &NnConfig::new(2, CostModel::cm2()));
        assert!(out.report.n_transfers >= 1);
        assert!(out.report.nodes_expanded > out.report.n_expand, "both PEs worked some cycle");
    }
}
