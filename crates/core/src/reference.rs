//! The pre-optimization engine loop, kept verbatim as an executable oracle.
//!
//! [`run_reference`] is the straightforward transcription of Sec. 2: every
//! cycle it sweeps **all** `P` processor slots (idle ones included),
//! collects per-PE results into a fresh vector, then runs a second O(P)
//! census sweep to count busy/idle processors and rebuild the matching
//! flags. It is deliberately unoptimized — the fused engine in
//! [`crate::engine`] must produce a **bit-identical schedule** (same
//! `Report`, same donations, same traces) while doing strictly less work
//! per cycle; the property tests in `tests/engine_equivalence.rs` and the
//! `engine_cycle` benchmark hold it to that.
//!
//! The only deviation from the seed loop is shared with the fused engine:
//! FEGS equalization merges donated chunks with
//! [`uts_tree::SearchStack::merge_from`], preserving the donation's frame
//! structure instead of flattening it into one frame (the old behaviour
//! lost the level boundaries that split policies and `depth()` rely on).

use rayon::prelude::*;
use uts_tree::{SearchStack, SplitPolicy, TreeProblem};

use crate::engine::{checkpoint_trigger, EngineConfig, LedgerRecorder, Outcome, ResumeState};
use crate::macrostep::compute_horizon;
use crate::scheme::TransferMode;

/// Per-processor state: the DFS stack plus a per-cycle child buffer.
struct Pe<N> {
    stack: SearchStack<N>,
    children: Vec<N>,
}

/// What one processor did in one expansion cycle.
#[derive(Clone, Copy, Default)]
struct CycleResult {
    worked: bool,
    goals: u64,
}

/// Run `problem` under `cfg` with the reference (two-sweep, allocating)
/// loop. Produces the same [`Outcome`] as [`crate::engine::run`].
pub fn run_reference<P: TreeProblem>(problem: &P, cfg: &EngineConfig) -> Outcome {
    run_reference_from(problem, cfg, None)
}

pub(crate) fn run_reference_from<P: TreeProblem>(
    problem: &P,
    cfg: &EngineConfig,
    resume: Option<ResumeState<P::Node>>,
) -> Outcome {
    assert!(cfg.p > 0, "need at least one processor");
    let state = resume.unwrap_or_else(|| ResumeState::fresh(problem, cfg));
    let mut hook = crate::ckpt::Hook::new(cfg, state.step);
    let mut machine = state.machine;
    let mut matcher = state.matcher;
    let mut pes: Vec<Pe<P::Node>> =
        state.pes.into_iter().map(|stack| Pe { stack, children: Vec::new() }).collect();
    let mut goals = state.goals;
    let mut donations = state.donations;
    let mut peak_stack_nodes = state.peak_stack_nodes;
    let mut in_init = state.in_init;
    let mut recorder = state.recorder;
    let mut truncated = false;
    let mut killed = false;

    let mut busy_flags = vec![false; cfg.p];
    let mut idle_flags = vec![false; cfg.p];

    // Ledger recording and checkpointing replay the macro engine's horizon
    // schedule (see `run_fused` for the argument); the oracle keeps no
    // active list, so it derives one at each macro-step boundary — O(P),
    // irrelevant here.
    let track = recorder.is_some() || hook.is_some();
    let mut lens_scratch: Vec<u32> = vec![0; cfg.p];
    let mut size_hist: Vec<u32> = Vec::new();
    let mut count_ge: Vec<u32> = Vec::new();
    let mut window_h = 0u64;
    let mut h_remaining = 0u64;

    loop {
        if track {
            if h_remaining == 0 {
                // The oracle keeps wrapped stacks, no dense length mirror;
                // build one at each boundary — O(P), irrelevant here.
                let mut active_len = 0usize;
                for (i, pe) in pes.iter().enumerate() {
                    let len = pe.stack.len();
                    lens_scratch[i] = len as u32;
                    active_len += (len > 0) as usize;
                }
                window_h = compute_horizon(
                    cfg,
                    &machine,
                    &lens_scratch,
                    active_len,
                    in_init,
                    &mut size_hist,
                    &mut count_ge,
                );
                h_remaining = window_h;
            }
            h_remaining -= 1;
        }

        // ---- one lockstep expansion cycle (all P slots, idle included) ----
        let cycle: Vec<CycleResult> = if cfg.p >= 64 {
            pes.par_iter_mut().map(|pe| step_pe(problem, pe)).collect()
        } else {
            pes.iter_mut().map(|pe| step_pe(problem, pe)).collect()
        };
        let worked = cycle.iter().filter(|c| c.worked).count();
        goals += cycle.iter().map(|c| c.goals).sum::<u64>();
        machine.expansion_cycle(worked);

        // ---- census (second full O(P) sweep) ----
        // Runs before the early-exit checks so `peak_stack_nodes` covers the
        // final cycle too, matching the fused engine (which computes the
        // census inside the expansion pass). Census touches no machine
        // state, so the schedule is unaffected.
        let mut busy = 0usize;
        let mut idle = 0usize;
        let mut has_work = 0usize;
        for (i, pe) in pes.iter().enumerate() {
            let splittable = pe.stack.can_split();
            let empty = pe.stack.is_empty();
            busy_flags[i] = splittable;
            idle_flags[i] = empty;
            busy += splittable as usize;
            idle += empty as usize;
            has_work += (!empty) as usize;
            peak_stack_nodes = peak_stack_nodes.max(pe.stack.len());
        }

        if cfg.stop_on_goal && goals > 0 {
            break;
        }
        if cfg.max_cycles.is_some_and(|m| machine.metrics().n_expand >= m) {
            truncated = true;
            break;
        }
        if has_work == 0 {
            break; // space exhausted
        }

        // ---- trigger (shared checkpoint logic) ----
        let fired =
            checkpoint_trigger(cfg, &machine, &mut in_init, busy, idle, window_h, &mut recorder);
        if fired {
            debug_assert!(!track || h_remaining == 0, "effective fire inside a certified window");
            h_remaining = 0;

            // ---- load-balancing phase ----
            let mut rounds = 0u32;
            let mut transfers = 0u64;
            let mut receipts = recorder.as_mut().map(LedgerRecorder::receipts_mut);
            match cfg.scheme.transfers {
                TransferMode::Single => {
                    let pairs = matcher.match_round(&busy_flags, &idle_flags);
                    transfers += apply_pairs(
                        &mut pes,
                        &pairs,
                        cfg.split,
                        &mut donations,
                        &mut peak_stack_nodes,
                        receipts.as_deref_mut(),
                    );
                    rounds = 1;
                }
                TransferMode::Multiple => loop {
                    refresh_flags(&pes, &mut busy_flags, &mut idle_flags);
                    if !busy_flags.iter().any(|&b| b) || !idle_flags.iter().any(|&i| i) {
                        break;
                    }
                    let pairs = matcher.match_round(&busy_flags, &idle_flags);
                    if pairs.is_empty() {
                        break;
                    }
                    transfers += apply_pairs(
                        &mut pes,
                        &pairs,
                        cfg.split,
                        &mut donations,
                        &mut peak_stack_nodes,
                        receipts.as_deref_mut(),
                    );
                    rounds += 1;
                },
                TransferMode::Equalize => {
                    rounds = equalize(
                        &mut pes,
                        &mut transfers,
                        &mut donations,
                        &mut peak_stack_nodes,
                        receipts,
                    );
                }
            }
            if rounds > 0 {
                machine.lb_phase(rounds, transfers);
            }
            if let Some(rec) = recorder.as_mut() {
                rec.settle(cfg, &machine, rounds, transfers);
            }
            // Reconciliation recount (oracle only): after the phase settles,
            // no stack — donor or receiver, at any point during the phase —
            // may have exceeded the running high-water mark. Transfers only
            // ever *move* nodes (a receiver peaks exactly when its transfer
            // lands, which `apply_pairs`/`equalize` observed; a donor only
            // shrinks), so a full recount must already be covered.
            #[cfg(debug_assertions)]
            for (i, pe) in pes.iter().enumerate() {
                debug_assert!(
                    pe.stack.len() <= peak_stack_nodes,
                    "peak_stack_nodes undercounts PE {i}: {} > {peak_stack_nodes}",
                    pe.stack.len(),
                );
            }
        }

        // ---- macro-step boundary (checkpoint + fault injection) ----
        if h_remaining == 0 {
            if let Some(hk) = hook.as_mut() {
                let dies = hk.boundary(fired, |step, fp| {
                    // The oracle keeps wrapped stacks, so it alone pays a
                    // clone per snapshot — irrelevant off the hot path.
                    let stacks: Vec<_> = pes.iter().map(|pe| pe.stack.clone()).collect();
                    crate::ckpt::capture(
                        step,
                        fp,
                        in_init,
                        goals,
                        &donations,
                        peak_stack_nodes,
                        &matcher,
                        &machine,
                        recorder.as_ref(),
                        &[],
                        uts_ckpt::StackSource::Frames(&stacks),
                    )
                });
                if dies {
                    killed = true;
                    break;
                }
            }
        }
    }

    let w = machine.metrics().nodes_expanded;
    let report = machine.finish(w);
    let ledger = recorder.map(|r| r.finish(&donations));
    Outcome {
        report,
        goals,
        truncated,
        killed,
        donations,
        peak_stack_nodes,
        macro_steps: Vec::new(),
        ledger,
    }
}

fn step_pe<P: TreeProblem>(problem: &P, pe: &mut Pe<P::Node>) -> CycleResult {
    let Some(node) = pe.stack.pop_next() else {
        return CycleResult::default();
    };
    let mut goals = 0;
    if problem.is_goal(&node) {
        goals = 1;
    }
    pe.children.clear();
    problem.expand(&node, &mut pe.children);
    pe.stack.push_frame(std::mem::take(&mut pe.children));
    CycleResult { worked: true, goals }
}

fn refresh_flags<N>(pes: &[Pe<N>], busy: &mut [bool], idle: &mut [bool]) {
    for (i, pe) in pes.iter().enumerate() {
        busy[i] = pe.stack.can_split();
        idle[i] = pe.stack.is_empty();
    }
}

fn apply_pairs<N: Clone>(
    pes: &mut [Pe<N>],
    pairs: &[uts_scan::Pair],
    split: SplitPolicy,
    donations: &mut [u32],
    peak: &mut usize,
    mut receipts: Option<&mut [u32]>,
) -> u64 {
    let mut done = 0;
    for pair in pairs {
        debug_assert_ne!(pair.donor, pair.receiver);
        let donated = pes[pair.donor].stack.split(split);
        if let Some(stack) = donated {
            debug_assert!(pes[pair.receiver].stack.is_empty());
            pes[pair.receiver].stack = stack;
            donations[pair.donor] += 1;
            if let Some(r) = receipts.as_deref_mut() {
                r[pair.receiver] += 1;
            }
            *peak = (*peak).max(pes[pair.receiver].stack.len());
            done += 1;
        }
    }
    done
}

/// FEGS equalization, frame-preserving (see the module docs for why this
/// differs from the seed loop).
fn equalize<N: Clone>(
    pes: &mut [Pe<N>],
    transfers: &mut u64,
    donations: &mut [u32],
    peak: &mut usize,
    mut receipts: Option<&mut [u32]>,
) -> u32 {
    let p = pes.len();
    let total: usize = pes.iter().map(|pe| pe.stack.len()).sum();
    let target = total.div_ceil(p);
    let mut rounds = 0u32;
    let cap = 2 * (usize::BITS - p.leading_zeros()) + 4;
    while rounds < cap {
        let donors: Vec<usize> =
            (0..p).filter(|&i| pes[i].stack.len() > target && pes[i].stack.can_split()).collect();
        let receivers: Vec<usize> = (0..p).filter(|&i| pes[i].stack.len() < target).collect();
        if donors.is_empty() || receivers.is_empty() {
            break;
        }
        let mut moved_any = false;
        for (&d, &r) in donors.iter().zip(&receivers) {
            let excess = pes[d].stack.len() - target;
            let want = target - pes[r].stack.len();
            if let Some(chunk) = pes[d].stack.split_count(excess.min(want)) {
                pes[r].stack.merge_from(chunk);
                donations[d] += 1;
                if let Some(rc) = receipts.as_deref_mut() {
                    rc[r] += 1;
                }
                *transfers += 1;
                *peak = (*peak).max(pes[r].stack.len());
                moved_any = true;
            }
        }
        rounds += 1;
        if !moved_any {
            break;
        }
    }
    rounds
}
