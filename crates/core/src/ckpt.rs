//! Engine-side checkpoint/resume wiring: sinks, config fingerprinting,
//! capture, and the resume entry points.
//!
//! The snapshot *format* lives in `uts-ckpt` (container, payload codec,
//! [`CheckpointPolicy`], [`FaultPlan`]); this module binds it to the
//! engines. A run configured with [`crate::EngineConfig::with_checkpoint`]
//! evaluates its policy at every **macro-step boundary** — the same
//! engine-invariant schedule the ledger replays, so all four engines
//! snapshot at identical points in the lockstep schedule and a snapshot
//! taken by one engine resumes under any other. [`resume_with`] rebuilds
//! the complete engine state from a snapshot and re-enters the configured
//! engine's loop; the resumed run finishes with an [`Outcome`]
//! bit-identical to the uninterrupted run (enforced by the kill→resume
//! differential suite in `tests/checkpoint_resume.rs`).
//!
//! What is *not* captured: the problem itself (a resume call re-supplies
//! it; the config fingerprint rejects snapshots from a different setup),
//! and anything derivable — the dense active list, the splittable flags
//! and the busy count are all pure functions of the per-PE stacks and are
//! rebuilt on resume.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use uts_ckpt::{
    CheckpointPolicy, CkptError, EngineSnapshot, FaultPlan, Fingerprint, MachineState,
    PreemptSignal, RecorderState, SnapshotView, StackSource,
};
use uts_machine::SimdMachine;
use uts_tree::{CkptNode, SplitPolicy, TreeProblem};

use crate::engine::{EngineConfig, EngineKind, LedgerRecorder, MacroStep, Outcome, ResumeState};
use crate::matcher::MatchState;
use crate::scheme::{Matching, TransferMode, Trigger};

/// One snapshot a run produced: the 1-based macro-step boundary it was
/// taken at plus the encoded container bytes.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Macro-step boundary (1-based) the snapshot captures.
    pub step: u64,
    /// The full container ([`EngineSnapshot::encode`] output).
    pub bytes: Vec<u8>,
}

/// Where a run's snapshots go.
#[derive(Debug, Clone)]
pub enum CheckpointSink {
    /// Collect snapshots in memory behind a shared handle. Cloning the
    /// sink (e.g. by cloning the [`EngineConfig`]) shares the same store,
    /// so a caller can keep a handle and read the snapshots back after the
    /// run — the fault-injection tests and the overhead benchmark do.
    Memory(Arc<Mutex<Vec<Snapshot>>>),
    /// Write each snapshot to `dir/ckpt-{step:08}.bin`, creating the
    /// directory on first write. An I/O failure panics: a run asked to
    /// checkpoint but unable to is better dead than silently unprotected.
    Dir(PathBuf),
}

impl CheckpointSink {
    /// A fresh in-memory sink.
    pub fn memory() -> Self {
        CheckpointSink::Memory(Arc::default())
    }

    /// A directory sink.
    pub fn dir(path: impl Into<PathBuf>) -> Self {
        CheckpointSink::Dir(path.into())
    }

    /// Snapshots collected so far (in boundary order). Memory sinks only —
    /// a directory sink's snapshots live on disk under their
    /// `ckpt-{step:08}.bin` names.
    pub fn taken(&self) -> Vec<Snapshot> {
        match self {
            CheckpointSink::Memory(store) => store.lock().expect("sink poisoned").clone(),
            CheckpointSink::Dir(_) => panic!("a Dir sink's snapshots live on disk"),
        }
    }

    fn store(&self, step: u64, bytes: Vec<u8>) {
        match self {
            CheckpointSink::Memory(store) => {
                store.lock().expect("sink poisoned").push(Snapshot { step, bytes });
            }
            CheckpointSink::Dir(dir) => {
                std::fs::create_dir_all(dir).expect("create checkpoint directory");
                let path = dir.join(format!("ckpt-{step:08}.bin"));
                std::fs::write(&path, bytes)
                    .unwrap_or_else(|e| panic!("write snapshot {}: {e}", path.display()));
            }
        }
    }
}

/// Complete checkpoint configuration of a run: when to snapshot, where
/// snapshots go, and (tests only) when to inject a kill.
#[derive(Debug, Clone)]
pub struct CheckpointCfg {
    /// Which macro-step boundaries snapshot.
    pub policy: CheckpointPolicy,
    /// Where the snapshots go.
    pub sink: CheckpointSink,
    /// Fault injection: kill the run at this boundary (after its snapshot,
    /// power-loss-between-steps semantics). The killed run returns its
    /// partial [`Outcome`] with [`Outcome::killed`] set.
    pub fault: Option<FaultPlan>,
    /// Cooperative preemption: when the shared signal is raised, the run
    /// parks at its next macro-step boundary — one snapshot of that
    /// boundary is **forced** into the sink (whatever the policy says)
    /// and the run returns with [`Outcome::killed`] set. Unlike a fault,
    /// the parked state is guaranteed captured: resuming the forced
    /// snapshot continues the schedule bit-identically, which is what a
    /// preemptive job scheduler relies on.
    pub preempt: Option<PreemptSignal>,
}

impl CheckpointCfg {
    /// Checkpoint under `policy` into a fresh in-memory sink.
    pub fn new(policy: CheckpointPolicy) -> Self {
        Self { policy, sink: CheckpointSink::memory(), fault: None, preempt: None }
    }

    /// Builder: redirect snapshots to a directory.
    pub fn into_dir(mut self, path: impl Into<PathBuf>) -> Self {
        self.sink = CheckpointSink::dir(path);
        self
    }

    /// Builder: inject a kill.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Builder: arm cooperative preemption under the given shared signal.
    pub fn with_preempt(mut self, signal: PreemptSignal) -> Self {
        self.preempt = Some(signal);
        self
    }
}

/// Fingerprint of everything that determines the lockstep schedule (and
/// therefore the meaning of a snapshot): machine size, scheme, cost model,
/// split policy, init fraction, stop/budget knobs, and the recording
/// flags (they change what a snapshot must contain). Deliberately
/// **excluded**: the engine kind, the host thread count, the parallel
/// engine's fan-out threshold, and the checkpoint configuration itself —
/// snapshots are engine- and host-invariant, and where they are written
/// does not change what they mean.
pub fn config_fingerprint(cfg: &EngineConfig) -> u64 {
    let mut f = Fingerprint::new();
    f.u64(cfg.p as u64);
    f.u64(match cfg.scheme.matching {
        Matching::Ngp => 0,
        Matching::Gp => 1,
    });
    match cfg.scheme.trigger {
        Trigger::Static { x } => {
            f.u64(0).u64(x.to_bits());
        }
        Trigger::Dp => {
            f.u64(1);
        }
        Trigger::Dk => {
            f.u64(2);
        }
        Trigger::AnyIdle => {
            f.u64(3);
        }
    }
    f.u64(match cfg.scheme.transfers {
        TransferMode::Single => 0,
        TransferMode::Multiple => 1,
        TransferMode::Equalize => 2,
    });
    f.u64(cfg.cost.topology as u64);
    f.u64(cfg.cost.u_calc)
        .u64(cfg.cost.u_comm)
        .u64(cfg.cost.lb_setup)
        .u64(cfg.cost.lb_transfer)
        .u64(cfg.cost.lb_multiplier as u64);
    f.u64(match cfg.split {
        SplitPolicy::Bottom => 0,
        SplitPolicy::Half => 1,
        SplitPolicy::Top => 2,
    });
    f.u64(cfg.init_fraction.is_some() as u64).u64(cfg.init_fraction.unwrap_or(0.0).to_bits());
    f.u64(cfg.stop_on_goal as u64);
    f.u64(cfg.max_cycles.is_some() as u64).u64(cfg.max_cycles.unwrap_or(0));
    f.u64(cfg.record_trace as u64);
    f.u64(cfg.record_horizons as u64);
    f.u64(cfg.record_ledger as u64);
    f.finish()
}

/// Encode a snapshot of the current macro-step boundary straight from the
/// engine's live state (borrowed stacks — no clone; the one serialization
/// pass is the entire per-snapshot cost). `step` and `fingerprint` come
/// from the [`Hook`], which calls this lazily — only when the policy
/// actually wants the boundary.
#[allow(clippy::too_many_arguments)]
pub(crate) fn capture<N: CkptNode>(
    step: u64,
    fingerprint: u64,
    in_init: bool,
    goals: u64,
    donations: &[u32],
    peak_stack_nodes: usize,
    matcher: &MatchState,
    machine: &SimdMachine,
    recorder: Option<&LedgerRecorder>,
    macro_steps: &[MacroStep],
    stacks: StackSource<'_, N>,
) -> Vec<u8> {
    let machine = MachineState::capture(machine);
    let recorder = recorder.map(|r| RecorderState {
        receipts: r.receipts_so_far().to_vec(),
        phases: r.phases_so_far().to_vec(),
    });
    let macro_steps: Vec<(u64, u64, u64)> =
        macro_steps.iter().map(|m| (m.start_cycle, m.horizon, m.ran)).collect();
    SnapshotView {
        step,
        in_init,
        goals,
        donations,
        peak_stack_nodes,
        global_pointer: matcher.global_pointer(),
        machine: &machine,
        recorder: recorder.as_ref(),
        macro_steps: &macro_steps,
        stacks,
    }
    .encode(fingerprint)
}

/// Per-run checkpoint driver the engine loops carry: counts macro-step
/// boundaries, applies the policy, and injects the configured fault.
/// `None` (no checkpoint config) costs the loops one branch per boundary.
pub(crate) struct Hook {
    cfg: CheckpointCfg,
    fingerprint: u64,
    step: u64,
}

impl Hook {
    /// The run's hook, if checkpointing is configured. `start_step` is 0
    /// for a fresh run and the snapshot's boundary count on resume, so
    /// boundary numbering continues seamlessly.
    pub(crate) fn new(cfg: &EngineConfig, start_step: u64) -> Option<Self> {
        cfg.checkpoint.as_ref().map(|c| Self {
            cfg: c.clone(),
            fingerprint: config_fingerprint(cfg),
            step: start_step,
        })
    }

    /// Process one macro-step boundary: snapshot if the policy wants it
    /// (encoding lazily — `encode` gets the boundary number and the config
    /// fingerprint and returns the container bytes), then report whether
    /// the run stops here. Two stop causes share the `true` return: the
    /// injected fault (power-loss semantics — only policy snapshots
    /// survive) and a raised [`PreemptSignal`] (park semantics — a
    /// snapshot of *this* boundary is forced into the sink so the run can
    /// always be resumed from exactly where it stopped). `fired` says the
    /// step ended in a balancing phase.
    pub(crate) fn boundary(
        &mut self,
        fired: bool,
        encode: impl FnOnce(u64, u64) -> Vec<u8>,
    ) -> bool {
        self.step += 1;
        let preempted = self.cfg.preempt.as_ref().is_some_and(PreemptSignal::is_raised);
        if preempted || self.cfg.policy.wants(self.step, fired) {
            self.cfg.sink.store(self.step, encode(self.step, self.fingerprint));
        }
        preempted || self.cfg.fault.is_some_and(|f| f.kill_at_step == self.step)
    }
}

/// Resume a run from a decoded snapshot under the engine named by
/// [`EngineConfig::engine`]. The configuration must be the one the
/// snapshot was taken under ([`config_fingerprint`]-equal; engine kind,
/// threads and checkpoint settings may differ freely) and the problem must
/// be the same — neither is captured in the snapshot. The returned
/// [`Outcome`] is bit-identical to the uninterrupted run's.
///
/// # Panics
/// Panics if the snapshot's machine size or ledger presence contradicts
/// `cfg` (impossible for snapshots decoded against this config's
/// fingerprint, which [`resume_from_bytes`] enforces).
pub fn resume_with<P: TreeProblem>(
    problem: &P,
    cfg: &EngineConfig,
    snapshot: EngineSnapshot<P::Node>,
) -> Outcome {
    assert_eq!(snapshot.p(), cfg.p, "snapshot machine size differs from the resuming config");
    assert_eq!(
        snapshot.recorder.is_some(),
        cfg.record_ledger,
        "snapshot ledger presence differs from the resuming config"
    );
    let resume = ResumeState {
        machine: snapshot.machine.restore(cfg.p, cfg.cost),
        matcher: MatchState::restore(cfg.scheme.matching, snapshot.global_pointer),
        pes: snapshot.stacks,
        goals: snapshot.goals,
        donations: snapshot.donations,
        peak_stack_nodes: snapshot.peak_stack_nodes,
        in_init: snapshot.in_init,
        macro_steps: snapshot
            .macro_steps
            .iter()
            .map(|&(start_cycle, horizon, ran)| MacroStep { start_cycle, horizon, ran })
            .collect(),
        recorder: snapshot.recorder.map(|r| LedgerRecorder::restore(r.receipts, r.phases)),
        step: snapshot.step,
    };
    match cfg.engine {
        EngineKind::Reference => crate::reference::run_reference_from(problem, cfg, Some(resume)),
        EngineKind::Fused => crate::engine::run_fused_from(problem, cfg, Some(resume)),
        EngineKind::Macro => crate::macrostep::run_from(problem, cfg, Some(resume)),
        EngineKind::Par => crate::parstep::run_par_from(problem, cfg, Some(resume)),
    }
}

/// Decode an encoded snapshot against `cfg`'s fingerprint and resume it.
/// The one-call path the CLI's `sts resume` uses.
pub fn resume_from_bytes<P: TreeProblem>(
    problem: &P,
    cfg: &EngineConfig,
    bytes: &[u8],
) -> Result<Outcome, CkptError> {
    let snapshot = EngineSnapshot::decode(bytes, config_fingerprint(cfg))?;
    Ok(resume_with(problem, cfg, snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use uts_machine::CostModel;

    fn base() -> EngineConfig {
        EngineConfig::new(16, Scheme::gp_dk(), CostModel::cm2())
    }

    #[test]
    fn fingerprint_ignores_engine_threads_and_checkpoint() {
        let a = base();
        let mut b = base().with_engine(EngineKind::Reference).with_threads(7);
        b.checkpoint = Some(CheckpointCfg::new(CheckpointPolicy::every(2)));
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
    }

    #[test]
    fn fingerprint_sees_every_schedule_relevant_knob() {
        let f = config_fingerprint(&base());
        let mut variants = vec![
            EngineConfig::new(17, Scheme::gp_dk(), CostModel::cm2()),
            EngineConfig::new(16, Scheme::ngp_dk(), CostModel::cm2()),
            EngineConfig::new(16, Scheme::gp_dp(), CostModel::cm2()),
            EngineConfig::new(16, Scheme::gp_static(0.8), CostModel::cm2()),
            EngineConfig::new(16, Scheme::gp_dk(), CostModel::hypercube()),
            base().with_split(SplitPolicy::Half),
            base().with_trace(),
            base().with_horizon_log(),
            base().with_ledger(),
        ];
        let mut stop = base();
        stop.stop_on_goal = true;
        variants.push(stop);
        let mut budget = base();
        budget.max_cycles = Some(100);
        variants.push(budget);
        let mut init = base();
        init.init_fraction = Some(0.5);
        variants.push(init);
        for v in &variants {
            assert_ne!(config_fingerprint(v), f, "{v:?}");
        }
    }

    #[test]
    fn kill_then_resume_matches_the_straight_run_on_every_engine() {
        let tree = uts_synth::GeometricTree { seed: 3, b_max: 8, depth_limit: 6 };
        for engine in EngineKind::ALL {
            let cfg = EngineConfig::new(32, Scheme::gp_dk(), CostModel::cm2())
                .with_ledger()
                .with_trace()
                .with_engine(engine);
            let straight = crate::run_with(&tree, &cfg);
            assert!(!straight.killed);

            let armed = cfg
                .clone()
                .with_checkpoint(CheckpointPolicy::every(2))
                .with_fault(FaultPlan::kill_at(5));
            let dead = crate::run_with(&tree, &armed);
            assert!(dead.killed, "{engine:?}");

            let snaps = armed.checkpoint.as_ref().unwrap().sink.taken();
            assert!(!snaps.is_empty(), "{engine:?}");
            assert!(snaps.last().unwrap().step <= 5);
            let out = resume_from_bytes(&tree, &cfg, &snaps.last().unwrap().bytes)
                .unwrap_or_else(|e| panic!("{engine:?}: {e}"));
            assert_eq!(out, straight, "{engine:?} resume must be bit-identical");
        }
    }

    #[test]
    fn preempt_parks_at_the_next_boundary_and_resumes_bit_identically() {
        let tree = uts_synth::GeometricTree { seed: 4, b_max: 8, depth_limit: 6 };
        for engine in EngineKind::ALL {
            let cfg = base().with_ledger().with_engine(engine);
            let straight = crate::run_with(&tree, &cfg);
            assert!(!straight.killed);

            // Signal raised before the run even starts: the engine must
            // still complete one macro-step, then park at boundary 1 with
            // a forced snapshot (the policy alone would never snapshot).
            let signal = PreemptSignal::new();
            signal.raise();
            let armed = cfg.clone().with_checkpoint_cfg(
                CheckpointCfg::new(CheckpointPolicy::default()).with_preempt(signal.clone()),
            );
            let parked = crate::run_with(&tree, &armed);
            assert!(parked.killed, "{engine:?}: a raised signal parks the run");
            let snaps = armed.checkpoint.as_ref().unwrap().sink.taken();
            assert_eq!(snaps.len(), 1, "{engine:?}: exactly the forced boundary snapshot");
            assert_eq!(snaps[0].step, 1, "{engine:?}: parked at the first boundary");

            // Park → resume, possibly through further preemptions, must
            // reproduce the uninterrupted run bit-for-bit.
            signal.clear();
            let out = resume_from_bytes(&tree, &cfg, &snaps[0].bytes)
                .unwrap_or_else(|e| panic!("{engine:?}: {e}"));
            assert_eq!(out, straight, "{engine:?}: resume after park must be bit-identical");
        }
    }

    #[test]
    fn an_unraised_preempt_signal_changes_nothing() {
        let tree = uts_synth::GeometricTree { seed: 6, b_max: 8, depth_limit: 6 };
        let cfg = base();
        let plain = crate::run_with(&tree, &cfg);
        let armed = cfg.clone().with_checkpoint_cfg(
            CheckpointCfg::new(CheckpointPolicy::default()).with_preempt(PreemptSignal::new()),
        );
        let out = crate::run_with(&tree, &armed);
        assert!(!out.killed);
        assert_eq!(out, plain);
        assert!(armed.checkpoint.as_ref().unwrap().sink.taken().is_empty());
    }

    #[test]
    fn checkpointing_does_not_perturb_the_outcome() {
        let tree = uts_synth::GeometricTree { seed: 6, b_max: 8, depth_limit: 6 };
        let cfg = base();
        let plain = crate::run_with(&tree, &cfg);
        let with_ckpt = crate::run_with(
            &tree,
            &cfg.clone().with_checkpoint(CheckpointPolicy::every(1).and_on_trigger()),
        );
        assert_eq!(with_ckpt, plain);
    }

    #[test]
    fn memory_sink_is_shared_across_clones() {
        let sink = CheckpointSink::memory();
        let clone = sink.clone();
        sink.store(1, vec![1, 2, 3]);
        let got = clone.taken();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].step, 1);
        assert_eq!(got[0].bytes, vec![1, 2, 3]);
    }
}
