//! Trigger evaluation: when does the machine leave the search phase?
//!
//! All three triggers are pure functions of the machine's phase-local
//! counters and the current busy count; they are evaluated after every
//! expansion cycle (and, per Sec. 2.1, at least one cycle always runs
//! between balancing phases — the engine guarantees that by construction).
//!
//! [`safe_horizon`] inverts that evaluation: given the stack-size
//! distribution at a checkpoint, it returns a sound lower bound on how
//! many cycles can run before the trigger could possibly cause a
//! balancing phase, which lets the engine batch the search phase into
//! macro-steps (see DESIGN.md §6).

use uts_machine::{PhaseStats, SimTime};

use crate::scheme::Trigger;

/// Everything a trigger may look at after an expansion cycle.
#[derive(Debug, Clone, Copy)]
pub struct TriggerCtx {
    /// Ensemble size `P`.
    pub p: usize,
    /// Busy (splittable) processors `A` after the cycle.
    pub busy: usize,
    /// Processors with empty stacks `I` after the cycle.
    pub idle: usize,
    /// Phase-local counters (work/idle/cycles since the last balance).
    pub phase: PhaseStats,
    /// `U_calc` in virtual time units.
    pub u_calc: SimTime,
    /// Estimated cost `L` of the next balancing phase (= cost of the
    /// previous one, per the paper).
    pub l_estimate: SimTime,
}

/// The integer boundary of the static trigger: `⌊x·P⌋`. Eq. (1)'s
/// comparison `A <= x·P` over an integer busy count `A` is exactly
/// `A <= ⌊x·P⌋`, so this single value is *the* trigger boundary — shared
/// by [`should_balance`], [`horizon_exceeds_one`] and [`safe_horizon`] so
/// the three can never disagree on which side of the float product a
/// boundary-exact `x = k/P` lands.
#[inline]
pub fn static_threshold(x: f64, p: usize) -> usize {
    (x * p as f64).floor() as usize
}

/// Evaluate `trigger` against the current context.
pub fn should_balance(trigger: Trigger, ctx: &TriggerCtx) -> bool {
    match trigger {
        // Eq. (1): A <= x·P, evaluated on the integer boundary ⌊x·P⌋.
        Trigger::Static { x } => ctx.busy <= static_threshold(x, ctx.p),
        // Eq. (2): w / (t + L) >= A, rewritten w >= A·(t + L) to stay in
        // integers. `w` and `t` are in virtual-time units.
        Trigger::Dp => {
            let w = ctx.phase.busy_pe_cycles as u128 * ctx.u_calc as u128;
            let t = ctx.phase.cycles as u128 * ctx.u_calc as u128;
            let rhs = ctx.busy as u128 * (t + ctx.l_estimate as u128);
            w >= rhs
        }
        // Eq. (4): w_idle >= L·P.
        Trigger::Dk => {
            let w_idle = ctx.phase.idle_pe_cycles as u128 * ctx.u_calc as u128;
            w_idle >= ctx.l_estimate as u128 * ctx.p as u128
        }
        // FESS/FEGS: any processor idle.
        Trigger::AnyIdle => ctx.idle > 0,
    }
}

/// Cap on any computed horizon: bounds the `safe_horizon` loops (the cost
/// of computing a horizon of `H` is O(H), amortized by the `H` cycles it
/// buys) and keeps a degenerate trigger from scanning forever.
pub const HORIZON_CAP: u64 = 1 << 20;

/// O(1) precheck: can [`safe_horizon`] possibly return more than 1 at this
/// checkpoint? Obtained by relaxing the stack-size distribution to its
/// pointwise upper bound `cg(t) = active` (as if no stack could ever
/// drain), which only lengthens every per-trigger bound — so a `false`
/// here means `safe_horizon` would return exactly 1 for *any* consistent
/// `count_ge`, and the caller can skip building the histogram for a step
/// that cannot batch. `true` promises nothing.
pub fn horizon_exceeds_one(
    trigger: Trigger,
    p: usize,
    active: usize,
    phase: &PhaseStats,
    u_calc: SimTime,
    l_estimate: SimTime,
) -> bool {
    if active == p {
        // Relaxed min-stack is unbounded, so the all-non-empty window
        // alone may cover cycle 1.
        return true;
    }
    let u = u_calc as u128;
    match trigger {
        // Safe at k=1 needs cg(4) > ⌊x·P⌋; relaxed cg(4) = active.
        Trigger::Static { x } => active > static_threshold(x, p),
        // Safe at j=1 needs w_ub < cg(3)·((c0+1)·u + L); relaxed cg(3) =
        // active (the same `a0` that bounds the work side).
        Trigger::Dp => {
            let w0 = phase.busy_pe_cycles as u128;
            let c0 = phase.cycles as u128;
            let a0 = active as u128;
            (w0 + a0) * u < a0 * ((c0 + 1) * u + l_estimate as u128)
        }
        // The j=1 idle increment is exact (`cg(1) == active`), so this is
        // the same test `safe_horizon` performs.
        Trigger::Dk => {
            let idle1 = phase.idle_pe_cycles as u128 + (p - active) as u128;
            idle1 * u < l_estimate as u128 * p as u128
        }
        // FESS/FEGS fire whenever anyone is idle, and someone is.
        Trigger::AnyIdle => false,
    }
}

/// What the event-horizon computation may look at, sampled at a trigger
/// checkpoint (immediately after trigger evaluation / balancing).
#[derive(Debug, Clone, Copy)]
pub struct HorizonCtx<'a> {
    /// Ensemble size `P`.
    pub p: usize,
    /// Processors with non-empty stacks (`A(t)` of Fig. 8).
    pub active: usize,
    /// Complementary cumulative histogram of active-PE stack sizes:
    /// `count_ge[t]` = number of active PEs holding `>= t` nodes, so
    /// `count_ge[0] == active`; indices past the slice are zero.
    pub count_ge: &'a [u32],
    /// Phase-local counters at the checkpoint.
    pub phase: PhaseStats,
    /// `U_calc` in virtual time units.
    pub u_calc: SimTime,
    /// Estimated cost `L` of the next balancing phase.
    pub l_estimate: SimTime,
}

impl HorizonCtx<'_> {
    /// `count_ge[t]` with out-of-range indices reading as zero.
    #[inline]
    fn cg(&self, t: u64) -> u64 {
        if (t as usize) < self.count_ge.len() {
            self.count_ge[t as usize] as u64
        } else {
            0
        }
    }

    /// The smallest stack size among active PEs: the largest `t` with
    /// `count_ge[t] == active`. Every PE holds at least `min_s` nodes, so
    /// none can empty before cycle `min_s`.
    fn min_stack(&self) -> u64 {
        let a = self.active as u64;
        let mut t = 0u64;
        while t < HORIZON_CAP && self.cg(t + 1) == a {
            t += 1;
        }
        t
    }
}

/// A sound lower bound `H >= 1` on the number of expansion cycles that can
/// run from this checkpoint before `trigger` could cause a balancing
/// phase: for every `k < H`, the trigger provably either does not fire at
/// checkpoint `k` or fires ineffectively (a fire with `busy == 0` or
/// `idle == 0` transfers nothing and touches no state, so the engine's
/// schedule is unchanged by not evaluating it).
///
/// Soundness rests on one monotone fact: each cycle pops exactly one node
/// per working PE, so a stack of size `s` still holds `>= s - k` nodes
/// after `k` cycles. Writing `cg(t)` for `count_ge[t]`:
///
/// * `busy(k) >= cg(k + 2)` — PEs still splittable after `k` cycles;
/// * `worked(j) <= active` and `worked(j) >= cg(j)` — bounds on the PEs
///   expanding at cycle `j <= k`;
/// * if `active == P`, then `idle(k) == 0` for all `k < min_s` — no
///   trigger can *effectively* fire while nobody is idle.
///
/// Each trigger's exact integer comparison is then evaluated against the
/// pessimistic bound; the horizon is the longest consecutive prefix of
/// provably-safe cycles, plus one (the next checkpoint is where the
/// engine re-evaluates exactly).
pub fn safe_horizon(trigger: Trigger, ctx: &HorizonCtx) -> u64 {
    debug_assert!(ctx.active > 0, "horizon is asked only while the search is live");
    debug_assert_eq!(ctx.cg(0), ctx.active as u64, "count_ge[0] must be the active count");
    // Cycles k <= all_nonempty_safe are safe because nobody can be idle.
    let all_nonempty_safe = if ctx.active == ctx.p { ctx.min_stack().saturating_sub(1) } else { 0 };
    let safe_k = match trigger {
        // Eq. (1) does not fire while busy > ⌊x·P⌋; busy(k) >= cg(k+2).
        Trigger::Static { x } => {
            let threshold = static_threshold(x, ctx.p) as u64;
            let mut k = 0u64;
            while k < HORIZON_CAP && ctx.cg(k + 3) > threshold {
                k += 1;
            }
            k.max(all_nonempty_safe)
        }
        // Eq. (2) does not fire while w < A·(t + L). Overestimate the
        // left side (every active PE works every cycle) and underestimate
        // the right (A(k) >= cg(k+2), and t grows exactly).
        Trigger::Dp => {
            let u = ctx.u_calc as u128;
            let w0 = ctx.phase.busy_pe_cycles as u128;
            let c0 = ctx.phase.cycles as u128;
            let a0 = ctx.active as u128;
            let l = ctx.l_estimate as u128;
            let mut k = 0u64;
            while k < HORIZON_CAP {
                let j = k + 1;
                let w_ub = (w0 + j as u128 * a0) * u;
                let rhs_lb = ctx.cg(j + 2) as u128 * ((c0 + j as u128) * u + l);
                if w_ub < rhs_lb || j <= all_nonempty_safe {
                    k = j;
                } else {
                    break;
                }
            }
            k
        }
        // Eq. (4) does not fire while w_idle < L·P. Idle time gained at
        // cycle j is P - worked(j) <= P - cg(j).
        Trigger::Dk => {
            let u = ctx.u_calc as u128;
            let lp = ctx.l_estimate as u128 * ctx.p as u128;
            let mut idle_ub = ctx.phase.idle_pe_cycles as u128;
            let mut k = 0u64;
            while k < HORIZON_CAP {
                let j = k + 1;
                idle_ub += (ctx.p as u64 - ctx.cg(j)) as u128;
                if idle_ub * u < lp || j <= all_nonempty_safe {
                    k = j;
                } else {
                    break;
                }
            }
            k
        }
        // FESS/FEGS fire whenever anyone is idle; only the all-non-empty
        // window is safe.
        Trigger::AnyIdle => all_nonempty_safe,
    };
    safe_k.min(HORIZON_CAP) + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(p: usize, busy: usize, idle: usize, phase: PhaseStats, l: SimTime) -> TriggerCtx {
        TriggerCtx { p, busy, idle, phase, u_calc: 30, l_estimate: l }
    }

    #[test]
    fn static_trigger_fires_at_threshold() {
        let phase = PhaseStats::default();
        // x = 0.5, P = 8: fires at A <= 4.
        assert!(should_balance(Trigger::Static { x: 0.5 }, &ctx(8, 4, 4, phase, 13)));
        assert!(!should_balance(Trigger::Static { x: 0.5 }, &ctx(8, 5, 3, phase, 13)));
        // Degenerate thresholds.
        assert!(should_balance(Trigger::Static { x: 1.0 }, &ctx(8, 8, 0, phase, 13)));
        assert!(!should_balance(Trigger::Static { x: 0.0 }, &ctx(8, 1, 7, phase, 13)));
        assert!(should_balance(Trigger::Static { x: 0.0 }, &ctx(8, 0, 8, phase, 13)));
    }

    #[test]
    fn dp_fires_when_area_r1_reaches_r2() {
        // P=4, A=4 throughout, 10 cycles: w = 40·u, t = 10·u, so w = A·t
        // exactly; with L = 0 the condition w >= A(t+L) holds.
        let phase = PhaseStats { cycles: 10, busy_pe_cycles: 40, idle_pe_cycles: 0 };
        assert!(should_balance(Trigger::Dp, &ctx(4, 4, 0, phase, 0)));
        // With a positive L it must wait (w < A(t+L)).
        assert!(!should_balance(Trigger::Dp, &ctx(4, 4, 0, phase, 13)));
    }

    #[test]
    fn dp_pathology_single_active_processor_never_fires() {
        // Paper Sec. 6.1 observation 1: with A=1 from the start, w = t, so
        // w >= 1·(t+L) never holds while L > 0.
        for cycles in [1u64, 10, 1000, 100_000] {
            let phase = PhaseStats { cycles, busy_pe_cycles: cycles, idle_pe_cycles: cycles * 3 };
            assert!(!should_balance(Trigger::Dp, &ctx(4, 1, 3, phase, 13)));
        }
    }

    #[test]
    fn dp_high_lb_cost_delays_triggering() {
        // Same trajectory; raising L flips the decision (Sec. 6.1 obs. 3).
        let phase = PhaseStats { cycles: 4, busy_pe_cycles: 14, idle_pe_cycles: 2 };
        // w = 14u = 420; A = 3; t = 4u = 120. A·(t+L) = 3·(120+L).
        assert!(should_balance(Trigger::Dp, &ctx(4, 3, 1, phase, 20)));
        assert!(!should_balance(Trigger::Dp, &ctx(4, 3, 1, phase, 2000)));
    }

    #[test]
    fn dk_fires_when_idle_time_covers_next_phase() {
        // P=8, L=13u... — work in raw units: u_calc=30, L=130.
        // w_idle = idle_pe_cycles·30 >= 130·8 = 1040 → idle_pe_cycles >= 35.
        let low = PhaseStats { cycles: 10, busy_pe_cycles: 46, idle_pe_cycles: 34 };
        let high = PhaseStats { cycles: 10, busy_pe_cycles: 45, idle_pe_cycles: 35 };
        assert!(!should_balance(Trigger::Dk, &ctx(8, 4, 4, low, 130)));
        assert!(should_balance(Trigger::Dk, &ctx(8, 4, 4, high, 130)));
    }

    #[test]
    fn dk_ignores_busy_count() {
        // Unlike DP, DK keeps accumulating idle time even when A = 1 and
        // eventually fires (the paper's robustness argument).
        let phase = PhaseStats { cycles: 50, busy_pe_cycles: 50, idle_pe_cycles: 150 };
        assert!(should_balance(Trigger::Dk, &ctx(4, 1, 3, phase, 1000)));
    }

    #[test]
    fn any_idle_fires_on_first_idle() {
        let phase = PhaseStats::default();
        assert!(!should_balance(Trigger::AnyIdle, &ctx(4, 4, 0, phase, 13)));
        assert!(should_balance(Trigger::AnyIdle, &ctx(4, 3, 1, phase, 13)));
    }

    /// Build `count_ge` from explicit active-PE stack sizes.
    fn count_ge_of(sizes: &[u64]) -> Vec<u32> {
        let max = sizes.iter().copied().max().unwrap_or(0);
        (0..=max + 1).map(|t| sizes.iter().filter(|&&s| s >= t).count() as u32).collect()
    }

    fn hctx<'a>(p: usize, count_ge: &'a [u32], phase: PhaseStats, l: SimTime) -> HorizonCtx<'a> {
        HorizonCtx {
            p,
            active: count_ge.first().copied().unwrap_or(0) as usize,
            count_ge,
            phase,
            u_calc: 30,
            l_estimate: l,
        }
    }

    #[test]
    fn horizon_is_at_least_one_for_every_trigger() {
        // Worst case: one active PE with one node — no safety margin at all.
        let cg = count_ge_of(&[1]);
        let phase = PhaseStats::default();
        for trigger in [Trigger::Static { x: 0.9 }, Trigger::Dp, Trigger::Dk, Trigger::AnyIdle] {
            assert_eq!(safe_horizon(trigger, &hctx(8, &cg, phase, 13)), 1, "{trigger:?}");
        }
    }

    #[test]
    fn static_horizon_is_order_statistic_minus_split_margin() {
        // P=8, x=0.5 (fires at busy <= 4): with 6 active PEs of sizes
        // [9,9,9,9,9,1], cg(k+2) > 4 holds while k+2 <= 9 and at least 5
        // stacks reach that size — 5 stacks hold 9, so safe through k=7;
        // not all-nonempty (active < P), so H = 8.
        let cg = count_ge_of(&[9, 9, 9, 9, 9, 1]);
        let h = safe_horizon(Trigger::Static { x: 0.5 }, &hctx(8, &cg, PhaseStats::default(), 13));
        assert_eq!(h, 8);
    }

    #[test]
    fn static_horizon_uses_all_nonempty_window_at_full_occupancy() {
        // P=4 all active with min stack 6: even though x=1.0 would fire
        // every cycle, nobody can go idle before cycle 6, so fires are
        // ineffective through k=5 → H=6.
        let cg = count_ge_of(&[6, 7, 9, 10]);
        let h = safe_horizon(Trigger::Static { x: 1.0 }, &hctx(4, &cg, PhaseStats::default(), 13));
        assert_eq!(h, 6);
    }

    #[test]
    fn any_idle_horizon_is_min_stack_at_full_occupancy_else_one() {
        let cg = count_ge_of(&[3, 5, 8, 4]);
        assert_eq!(safe_horizon(Trigger::AnyIdle, &hctx(4, &cg, PhaseStats::default(), 13)), 3);
        // Same sizes but a fifth (idle) processor: fires immediately.
        assert_eq!(safe_horizon(Trigger::AnyIdle, &hctx(5, &cg, PhaseStats::default(), 13)), 1);
    }

    #[test]
    fn dk_horizon_spends_the_idle_budget() {
        // P=4, u=30, L=120 → DK fires once idle PE-cycles reach
        // L·P/u = 16. Three active PEs of size 5: cycles 1..=5 gain at
        // most 1 idle PE-cycle each (cg(j)=3), cycles 6.. gain 4.
        // idle_ub: 1,2,3,4,5,9,13,17 → first ≥16 at k=8, so safe through
        // k=7 and H=8.
        let cg = count_ge_of(&[5, 5, 5]);
        let h = safe_horizon(Trigger::Dk, &hctx(4, &cg, PhaseStats::default(), 120));
        assert_eq!(h, 8);
        // A head start of accumulated idle time shrinks the window:
        // idle0 = 14 → idle_ub 15,16 → safe only k=1, H=2.
        let phase = PhaseStats { cycles: 14, busy_pe_cycles: 42, idle_pe_cycles: 14 };
        assert_eq!(safe_horizon(Trigger::Dk, &hctx(4, &cg, phase, 120)), 2);
    }

    #[test]
    fn dp_horizon_single_processor_runs_to_possible_exhaustion() {
        // Sec. 6.1 pathology: A=1 never actually fires D^P (w = t < t+L).
        // The bound proves safety as long as the lone stack provably stays
        // splittable — size 40 at the checkpoint guarantees >= 2 nodes
        // through cycle 38, so H = 39.
        let cg = count_ge_of(&[40]);
        let h = safe_horizon(Trigger::Dp, &hctx(4, &cg, PhaseStats::default(), 13));
        assert_eq!(h, 39);
    }

    #[test]
    fn dp_horizon_waits_while_work_rate_lags() {
        // P=4, all 4 active with deep stacks (size 50), fresh phase, L=130:
        // fire needs w >= A·(t+L); w grows 4u per cycle, rhs ≈ 4·(t+L), so
        // the lag is exactly the L term: safe while 4ju < 4(ju+L), i.e.
        // forever by that bound alone — but cg(j+2) drops to 0 past j=48,
        // making rhs_lb 0; the all-nonempty window (min_s=50) still covers
        // through k=49, so H=50.
        let cg = count_ge_of(&[50, 50, 50, 50]);
        let h = safe_horizon(Trigger::Dp, &hctx(4, &cg, PhaseStats::default(), 130));
        assert_eq!(h, 50);
    }

    #[test]
    fn horizons_never_exceed_the_cap() {
        // Two huge stacks on a fully active 2-PE machine with an enormous
        // L: every bound would certify far past the cap.
        let cg = count_ge_of(&[HORIZON_CAP + 9, HORIZON_CAP + 9]);
        for trigger in [Trigger::Static { x: 0.0 }, Trigger::Dp, Trigger::Dk, Trigger::AnyIdle] {
            let h = safe_horizon(trigger, &hctx(2, &cg, PhaseStats::default(), u64::MAX >> 32));
            assert!(h <= HORIZON_CAP + 1, "{trigger:?}: {h}");
            assert!(h > 1, "{trigger:?} should certify a long window here");
        }
    }

    mod static_boundary {
        use proptest::prelude::*;

        use super::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Sweep the exact boundary values x = k/P. The integer
            /// threshold ⌊x·P⌋ must (a) reproduce eq. (1)'s float
            /// comparison for every busy count — proving the refactor is
            /// schedule-preserving — and (b) make the trigger, the O(1)
            /// precheck and the horizon bound agree on which side of the
            /// boundary a checkpoint lands.
            #[test]
            fn trigger_precheck_and_horizon_agree_at_k_over_p(
                p in 1usize..=512,
                k_seed in 0usize..=512,
                active_seed in 1usize..=512,
                deep in 8u64..64,
            ) {
                let k = k_seed % (p + 1);
                let active = 1 + active_seed % p;
                let x = k as f64 / p as f64;
                let threshold = static_threshold(x, p);

                // (a) Exactly the float comparison, at every busy count.
                for busy in 0..=p {
                    let float_fires = (busy as f64) <= x * p as f64;
                    prop_assert_eq!(
                        float_fires,
                        busy <= threshold,
                        "x={}/{} busy={} threshold={}", k, p, busy, threshold
                    );
                }

                // (b) A checkpoint with `active` deep stacks (busy(k) =
                // active for the whole window): trigger, precheck and
                // horizon must agree on the boundary.
                let trigger = Trigger::Static { x };
                let sizes = vec![deep; active];
                let cg = count_ge_of(&sizes);
                let phase = PhaseStats::default();
                let ctx = hctx(p, &cg, phase, 13);
                let fires = should_balance(
                    trigger,
                    &TriggerCtx { p, busy: active, idle: p - active, phase, u_calc: 30, l_estimate: 13 },
                );
                let precheck = horizon_exceeds_one(trigger, p, active, &phase, 30, 13);
                let h = safe_horizon(trigger, &ctx);
                prop_assert_eq!(fires, active <= threshold);
                prop_assert_eq!(precheck, active == p || active > threshold);
                if fires && active < p {
                    // An effective fire at the very next checkpoint: no
                    // batching window may be certified.
                    prop_assert_eq!(h, 1, "x={}/{} active={} h={}", k, p, active, h);
                    prop_assert!(!precheck);
                }
                if !precheck {
                    prop_assert_eq!(h, 1);
                }
            }
        }
    }

    #[test]
    fn precheck_refusals_are_sound() {
        // Whenever `horizon_exceeds_one` says no, `safe_horizon` must
        // return exactly 1 for every stack-size distribution consistent
        // with that active count — sweep a grid of distributions, phases
        // and triggers and compare the two on each.
        let distributions: &[&[u64]] =
            &[&[1], &[1, 1], &[2, 5], &[9, 9, 9], &[1, 3, 7, 40], &[2, 2, 2, 2, 2, 2]];
        let phases = [
            PhaseStats::default(),
            PhaseStats { cycles: 3, busy_pe_cycles: 11, idle_pe_cycles: 2 },
            PhaseStats { cycles: 40, busy_pe_cycles: 200, idle_pe_cycles: 350 },
        ];
        let triggers = [
            Trigger::Static { x: 0.25 },
            Trigger::Static { x: 0.95 },
            Trigger::Dp,
            Trigger::Dk,
            Trigger::AnyIdle,
        ];
        for sizes in distributions {
            let cg = count_ge_of(sizes);
            for p in [sizes.len(), sizes.len() + 1, 4 * sizes.len()] {
                for phase in phases {
                    for trigger in triggers {
                        let ctx = hctx(p, &cg, phase, 13);
                        let fast = horizon_exceeds_one(trigger, p, ctx.active, &phase, 30, 13);
                        let h = safe_horizon(trigger, &ctx);
                        assert!(
                            fast || h == 1,
                            "{trigger:?} p={p} sizes={sizes:?} phase={phase:?}: \
                             precheck said 1 but horizon is {h}"
                        );
                    }
                }
            }
        }
    }
}
