//! Trigger evaluation: when does the machine leave the search phase?
//!
//! All three triggers are pure functions of the machine's phase-local
//! counters and the current busy count; they are evaluated after every
//! expansion cycle (and, per Sec. 2.1, at least one cycle always runs
//! between balancing phases — the engine guarantees that by construction).

use uts_machine::{PhaseStats, SimTime};

use crate::scheme::Trigger;

/// Everything a trigger may look at after an expansion cycle.
#[derive(Debug, Clone, Copy)]
pub struct TriggerCtx {
    /// Ensemble size `P`.
    pub p: usize,
    /// Busy (splittable) processors `A` after the cycle.
    pub busy: usize,
    /// Processors with empty stacks `I` after the cycle.
    pub idle: usize,
    /// Phase-local counters (work/idle/cycles since the last balance).
    pub phase: PhaseStats,
    /// `U_calc` in virtual time units.
    pub u_calc: SimTime,
    /// Estimated cost `L` of the next balancing phase (= cost of the
    /// previous one, per the paper).
    pub l_estimate: SimTime,
}

/// Evaluate `trigger` against the current context.
pub fn should_balance(trigger: Trigger, ctx: &TriggerCtx) -> bool {
    match trigger {
        // Eq. (1): A <= x·P.
        Trigger::Static { x } => (ctx.busy as f64) <= x * ctx.p as f64,
        // Eq. (2): w / (t + L) >= A, rewritten w >= A·(t + L) to stay in
        // integers. `w` and `t` are in virtual-time units.
        Trigger::Dp => {
            let w = ctx.phase.busy_pe_cycles as u128 * ctx.u_calc as u128;
            let t = ctx.phase.cycles as u128 * ctx.u_calc as u128;
            let rhs = ctx.busy as u128 * (t + ctx.l_estimate as u128);
            w >= rhs
        }
        // Eq. (4): w_idle >= L·P.
        Trigger::Dk => {
            let w_idle = ctx.phase.idle_pe_cycles as u128 * ctx.u_calc as u128;
            w_idle >= ctx.l_estimate as u128 * ctx.p as u128
        }
        // FESS/FEGS: any processor idle.
        Trigger::AnyIdle => ctx.idle > 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(p: usize, busy: usize, idle: usize, phase: PhaseStats, l: SimTime) -> TriggerCtx {
        TriggerCtx { p, busy, idle, phase, u_calc: 30, l_estimate: l }
    }

    #[test]
    fn static_trigger_fires_at_threshold() {
        let phase = PhaseStats::default();
        // x = 0.5, P = 8: fires at A <= 4.
        assert!(should_balance(Trigger::Static { x: 0.5 }, &ctx(8, 4, 4, phase, 13)));
        assert!(!should_balance(Trigger::Static { x: 0.5 }, &ctx(8, 5, 3, phase, 13)));
        // Degenerate thresholds.
        assert!(should_balance(Trigger::Static { x: 1.0 }, &ctx(8, 8, 0, phase, 13)));
        assert!(!should_balance(Trigger::Static { x: 0.0 }, &ctx(8, 1, 7, phase, 13)));
        assert!(should_balance(Trigger::Static { x: 0.0 }, &ctx(8, 0, 8, phase, 13)));
    }

    #[test]
    fn dp_fires_when_area_r1_reaches_r2() {
        // P=4, A=4 throughout, 10 cycles: w = 40·u, t = 10·u, so w = A·t
        // exactly; with L = 0 the condition w >= A(t+L) holds.
        let phase = PhaseStats { cycles: 10, busy_pe_cycles: 40, idle_pe_cycles: 0 };
        assert!(should_balance(Trigger::Dp, &ctx(4, 4, 0, phase, 0)));
        // With a positive L it must wait (w < A(t+L)).
        assert!(!should_balance(Trigger::Dp, &ctx(4, 4, 0, phase, 13)));
    }

    #[test]
    fn dp_pathology_single_active_processor_never_fires() {
        // Paper Sec. 6.1 observation 1: with A=1 from the start, w = t, so
        // w >= 1·(t+L) never holds while L > 0.
        for cycles in [1u64, 10, 1000, 100_000] {
            let phase = PhaseStats { cycles, busy_pe_cycles: cycles, idle_pe_cycles: cycles * 3 };
            assert!(!should_balance(Trigger::Dp, &ctx(4, 1, 3, phase, 13)));
        }
    }

    #[test]
    fn dp_high_lb_cost_delays_triggering() {
        // Same trajectory; raising L flips the decision (Sec. 6.1 obs. 3).
        let phase = PhaseStats { cycles: 4, busy_pe_cycles: 14, idle_pe_cycles: 2 };
        // w = 14u = 420; A = 3; t = 4u = 120. A·(t+L) = 3·(120+L).
        assert!(should_balance(Trigger::Dp, &ctx(4, 3, 1, phase, 20)));
        assert!(!should_balance(Trigger::Dp, &ctx(4, 3, 1, phase, 2000)));
    }

    #[test]
    fn dk_fires_when_idle_time_covers_next_phase() {
        // P=8, L=13u... — work in raw units: u_calc=30, L=130.
        // w_idle = idle_pe_cycles·30 >= 130·8 = 1040 → idle_pe_cycles >= 35.
        let low = PhaseStats { cycles: 10, busy_pe_cycles: 46, idle_pe_cycles: 34 };
        let high = PhaseStats { cycles: 10, busy_pe_cycles: 45, idle_pe_cycles: 35 };
        assert!(!should_balance(Trigger::Dk, &ctx(8, 4, 4, low, 130)));
        assert!(should_balance(Trigger::Dk, &ctx(8, 4, 4, high, 130)));
    }

    #[test]
    fn dk_ignores_busy_count() {
        // Unlike DP, DK keeps accumulating idle time even when A = 1 and
        // eventually fires (the paper's robustness argument).
        let phase = PhaseStats { cycles: 50, busy_pe_cycles: 50, idle_pe_cycles: 150 };
        assert!(should_balance(Trigger::Dk, &ctx(4, 1, 3, phase, 1000)));
    }

    #[test]
    fn any_idle_fires_on_first_idle() {
        let phase = PhaseStats::default();
        assert!(!should_balance(Trigger::AnyIdle, &ctx(4, 4, 0, phase, 13)));
        assert!(should_balance(Trigger::AnyIdle, &ctx(4, 3, 1, phase, 13)));
    }
}
