//! The scheme taxonomy (Table 1 of the paper, extended with the Sec. 8
//! related-work schemes).

use serde::{Deserialize, Serialize};

/// How idle processors are paired with busy donors during a balancing
/// phase (Sec. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Matching {
    /// Plain rendezvous: k-th busy (from processor 0) feeds the k-th idle.
    /// The prior-work scheme of Powley et al. and Mahanti & Daniels.
    Ngp,
    /// Global-pointer rendezvous: the busy enumeration starts after the
    /// last donor of the previous phase, rotating the donation burden.
    /// **New in the paper.**
    Gp,
}

/// When a balancing phase is triggered (checked after every expansion
/// cycle; at least one cycle always runs between phases).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Trigger {
    /// `S^x`: balance as soon as the busy count `A <= x * P` (eq. 1).
    Static {
        /// The threshold fraction `x ∈ [0, 1]`.
        x: f64,
    },
    /// `D^P` (Powley/Ferguson/Korf): balance when `w >= A * (t + L)`
    /// (eq. 2), `w` = work this phase in PE-time, `t` = elapsed phase time,
    /// `L` = previous phase's cost.
    Dp,
    /// `D^K` (**new in the paper**): balance when the idle time accumulated
    /// this phase exceeds the next phase's cost spread over the machine:
    /// `w_idle >= L * P` (eq. 4).
    Dk,
    /// Balance as soon as any processor is idle (the FESS/FEGS trigger of
    /// Mahanti & Daniels, Sec. 8).
    AnyIdle,
}

/// How many transfer rounds one balancing phase performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferMode {
    /// One rendezvous round: every matched busy processor splits once.
    Single,
    /// Repeat rendezvous rounds until no idle processor can be fed — the
    /// paper requires this whenever `D^P` triggering is used (Sec. 2.3).
    Multiple,
    /// Repeat counted transfers until node counts are near-uniform across
    /// processors (the FEGS scheme of Sec. 8).
    Equalize,
}

/// A complete load-balancing scheme: matching × trigger × transfer mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scheme {
    /// The matching mechanism.
    pub matching: Matching,
    /// The triggering mechanism.
    pub trigger: Trigger,
    /// The transfer mode.
    pub transfers: TransferMode,
}

impl Scheme {
    /// Parse a scheme name (`gp-s:0.8`, `ngp-dk`, `fess`, …) — the shared
    /// grammar for the CLI and the job-server spec decoder.
    pub fn parse(s: &str) -> Result<Self, String> {
        fn static_threshold(x: &str) -> Result<f64, String> {
            let x: f64 = x.parse().map_err(|_| format!("bad static threshold `{x}`"))?;
            if (0.0..=1.0).contains(&x) {
                Ok(x)
            } else {
                Err(format!("static threshold {x} must lie in [0, 1]"))
            }
        }
        if let Some(x) = s.strip_prefix("gp-s:") {
            return static_threshold(x).map(Scheme::gp_static);
        }
        if let Some(x) = s.strip_prefix("ngp-s:") {
            return static_threshold(x).map(Scheme::ngp_static);
        }
        match s {
            "gp-dk" => Ok(Scheme::gp_dk()),
            "ngp-dk" => Ok(Scheme::ngp_dk()),
            "gp-dp" => Ok(Scheme::gp_dp()),
            "ngp-dp" => Ok(Scheme::ngp_dp()),
            "fess" => Ok(Scheme::fess()),
            "fegs" => Ok(Scheme::fegs()),
            other => Err(format!("unknown scheme `{other}`")),
        }
    }

    /// `nGP-S^x` — prior work (Powley et al.; Mahanti & Daniels).
    pub fn ngp_static(x: f64) -> Self {
        Self {
            matching: Matching::Ngp,
            trigger: Trigger::Static { x },
            transfers: TransferMode::Single,
        }
    }

    /// `GP-S^x` — new scheme.
    pub fn gp_static(x: f64) -> Self {
        Self {
            matching: Matching::Gp,
            trigger: Trigger::Static { x },
            transfers: TransferMode::Single,
        }
    }

    /// `nGP-D^P` (multiple transfers, as the paper requires for `D^P`).
    pub fn ngp_dp() -> Self {
        Self { matching: Matching::Ngp, trigger: Trigger::Dp, transfers: TransferMode::Multiple }
    }

    /// `GP-D^P` — new scheme (multiple transfers).
    pub fn gp_dp() -> Self {
        Self { matching: Matching::Gp, trigger: Trigger::Dp, transfers: TransferMode::Multiple }
    }

    /// `nGP-D^K` — new scheme (single transfer).
    pub fn ngp_dk() -> Self {
        Self { matching: Matching::Ngp, trigger: Trigger::Dk, transfers: TransferMode::Single }
    }

    /// `GP-D^K` — new scheme (single transfer).
    pub fn gp_dk() -> Self {
        Self { matching: Matching::Gp, trigger: Trigger::Dk, transfers: TransferMode::Single }
    }

    /// FESS (Mahanti & Daniels): balance on first idle, single transfer,
    /// nGP matching.
    pub fn fess() -> Self {
        Self { matching: Matching::Ngp, trigger: Trigger::AnyIdle, transfers: TransferMode::Single }
    }

    /// FEGS (Mahanti & Daniels): balance on first idle, equalize node
    /// counts, nGP matching.
    pub fn fegs() -> Self {
        Self {
            matching: Matching::Ngp,
            trigger: Trigger::AnyIdle,
            transfers: TransferMode::Equalize,
        }
    }

    /// The six schemes of the paper's Table 1, with a generic static
    /// threshold `x`.
    pub fn table1(x: f64) -> [(&'static str, Scheme); 6] {
        [
            ("nGP-S^x", Self::ngp_static(x)),
            ("nGP-D^P", Self::ngp_dp()),
            ("nGP-D^K", Self::ngp_dk()),
            ("GP-S^x", Self::gp_static(x)),
            ("GP-D^P", Self::gp_dp()),
            ("GP-D^K", Self::gp_dk()),
        ]
    }

    /// Display name in the paper's notation.
    pub fn name(&self) -> String {
        let m = match self.matching {
            Matching::Ngp => "nGP",
            Matching::Gp => "GP",
        };
        let t = match self.trigger {
            Trigger::Static { x } => format!("S^{x:.2}"),
            Trigger::Dp => "D^P".to_string(),
            Trigger::Dk => "D^K".to_string(),
            Trigger::AnyIdle => match self.transfers {
                TransferMode::Equalize => return "FEGS".to_string(),
                _ => return "FESS".to_string(),
            },
        };
        format!("{m}-{t}")
    }

    /// Whether this scheme's trigger adapts at run time.
    pub fn is_dynamic(&self) -> bool {
        matches!(self.trigger, Trigger::Dp | Trigger::Dk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_the_papers_six_schemes() {
        let t = Scheme::table1(0.8);
        assert_eq!(t.len(), 6);
        // DP schemes use multiple transfers, everything else single.
        for (name, s) in t {
            match s.trigger {
                Trigger::Dp => assert_eq!(s.transfers, TransferMode::Multiple, "{name}"),
                _ => assert_eq!(s.transfers, TransferMode::Single, "{name}"),
            }
        }
    }

    #[test]
    fn names_follow_paper_notation() {
        assert_eq!(Scheme::gp_static(0.9).name(), "GP-S^0.90");
        assert_eq!(Scheme::ngp_dp().name(), "nGP-D^P");
        assert_eq!(Scheme::gp_dk().name(), "GP-D^K");
        assert_eq!(Scheme::fess().name(), "FESS");
        assert_eq!(Scheme::fegs().name(), "FEGS");
    }

    #[test]
    fn dynamic_flag() {
        assert!(Scheme::gp_dp().is_dynamic());
        assert!(Scheme::ngp_dk().is_dynamic());
        assert!(!Scheme::gp_static(0.5).is_dynamic());
        assert!(!Scheme::fess().is_dynamic());
    }
}
